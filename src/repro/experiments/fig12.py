"""Figure 12 — available Vmin margin vs. consecutive ΔI events and
stimulus frequency.

For each (consecutive-event count, stimulus frequency) pair a Vmin
experiment undervolts to first failure.  Findings to reproduce:

* synchronized cases sit in a narrow low-margin band regardless of the
  event count and frequency — a single synchronized ΔI event already
  generates most of the worst-case noise;
* disabling synchronization (∞ events, free-running phases) more than
  doubles the margin;
* the 1 Hz and very-high-frequency points show extra margin (bursts
  land on different sync intervals / the ΔI collapses);
* the worst-case *customer* line (80 % ΔI, no sync) has margin above
  all of these — the optimization headroom the paper's §VII targets.
"""

from __future__ import annotations

from ..analysis.margins import customer_margin_line, plan_customer_margin_line
from ..analysis.report import render_table
from ..measure.vmin import plan_vmin_experiment, run_vmin_experiment
from ..plan import RunPlan
from ..units import format_freq
from .common import ExperimentContext
from .registry import ExperimentResult, register, register_plan

EVENT_COUNTS = [1, 2, 10, 1000]
FREQS = [1.0, 3.7e4, 2.6e6, 1e7, 1e8]


@register_plan("fig12")
def plan_fig12(context: ExperimentContext) -> RunPlan:
    generator = context.generator
    chip = context.chip
    plan = RunPlan.for_chip(chip)
    for freq in FREQS:
        for count in EVENT_COUNTS:
            mark = generator.max_didt(
                freq_hz=freq, synchronize=True, n_events=count
            )
            plan.extend(
                plan_vmin_experiment(
                    chip, [mark.current_program()] * chip.n_cores, context.options
                )
            )
        mark = generator.max_didt(freq_hz=freq, synchronize=False)
        plan.extend(
            plan_vmin_experiment(
                chip, [mark.current_program()] * chip.n_cores, context.options
            )
        )
    plan.extend(
        plan_customer_margin_line(
            chip,
            generator.max_didt(
                freq_hz=context.resonant_freq_hz, synchronize=False
            ).current_program(),
            options=context.options,
        )
    )
    return plan


@register("fig12", "Available margin vs. consecutive ΔI events and frequency")
def run(context: ExperimentContext) -> ExperimentResult:
    generator = context.generator
    chip = context.chip
    rows = []
    margins: dict[tuple[object, float], float] = {}

    for freq in FREQS:
        for count in EVENT_COUNTS:
            mark = generator.max_didt(
                freq_hz=freq, synchronize=True, n_events=count
            )
            result = run_vmin_experiment(
                chip, [mark.current_program()] * chip.n_cores, session=context.session
            )
            margins[(count, freq)] = result.margin_frac
            rows.append(
                [str(count), format_freq(freq), f"{result.margin_frac * 100:.1f}%"]
            )
        # The unsynchronized (∞ events) case.
        mark = generator.max_didt(freq_hz=freq, synchronize=False)
        result = run_vmin_experiment(
            chip, [mark.current_program()] * chip.n_cores, session=context.session
        )
        margins[("inf", freq)] = result.margin_frac
        rows.append(["inf/nosync", format_freq(freq), f"{result.margin_frac * 100:.1f}%"])

    customer = customer_margin_line(
        chip,
        generator.max_didt(
            freq_hz=context.resonant_freq_hz, synchronize=False
        ).current_program(),
        session=context.session,
    )
    rows.append(["customer-80%", "worst-case", f"{customer.margin_frac * 100:.1f}%"])

    text = render_table(
        ["consecutive ΔI events", "stimulus", "available margin"], rows,
        title="Vmin margins (paper Fig. 12; margin = bias removed before first failure)",
    )

    sync_res = [
        margins[(c, f)] for c in EVENT_COUNTS for f in FREQS if 1e4 <= f <= 5e6
    ]
    unsync_res = [margins[("inf", f)] for f in FREQS if 1e4 <= f <= 5e6]
    data = {
        "margins": {f"{c}@{f:g}": m for (c, f), m in margins.items()},
        "sync_band": (min(sync_res), max(sync_res)),
        "unsync_band": (min(unsync_res), max(unsync_res)),
        "unsync_more_than_doubles": min(unsync_res) >= 2 * max(sync_res) - 1e-9,
        "margin_1hz": margins[(1000, 1.0)],
        "margin_100mhz": margins[(1000, 1e8)],
        "customer_margin": customer.margin_frac,
    }
    return ExperimentResult("fig12", "Vmin margin study", text, data)
