"""Figure 9 — noise vs. stimulus frequency with TOD synchronization.

Synchronization (every 4 ms, a thousand ΔI events per burst) raises the
noise across the whole spectrum — by roughly 20 %p2p points at the
resonant band — and synchronized non-resonant stimulation exceeds
unsynchronized resonant stimulation.
"""

from __future__ import annotations

from ..analysis.report import render_series
from ..analysis.sensitivity import (
    default_frequency_grid,
    plan_stimulus_frequency,
    sweep_stimulus_frequency,
)
from ..plan import RunPlan
from ..units import format_freq
from .common import ExperimentContext
from .registry import ExperimentResult, register, register_plan


@register_plan("fig9")
def plan_fig9(context: ExperimentContext) -> RunPlan:
    freqs = default_frequency_grid(
        points_per_decade=context.freq_points_per_decade
    )
    plan = plan_stimulus_frequency(
        context.generator, context.chip, freqs,
        synchronize=True, options=context.options, n_events=1000,
    )
    # The unsynchronized reference sweep — identical runs to Fig. 7a,
    # which is exactly the sharing the campaign planner dedups.
    plan.extend(
        plan_stimulus_frequency(
            context.generator, context.chip, freqs,
            synchronize=False, options=context.options,
        )
    )
    return plan


@register("fig9", "Noise vs. stimulus frequency (synchronized every 4 ms)")
def run(context: ExperimentContext) -> ExperimentResult:
    freqs = default_frequency_grid(
        points_per_decade=context.freq_points_per_decade
    )
    synced = sweep_stimulus_frequency(
        context.generator, context.chip, freqs,
        synchronize=True, session=context.session, n_events=1000,
    )
    # The unsynchronized reference is the Fig. 7a sweep; running it
    # through the shared session replays its cached points.
    unsynced = sweep_stimulus_frequency(
        context.generator, context.chip, freqs,
        synchronize=False, session=context.session,
    )
    series = {
        f"core{c} %p2p": [p.p2p_by_core[c] for p in synced]
        for c in range(context.chip.n_cores)
    }
    text = render_series(
        "stimulus", [format_freq(p.freq_hz) for p in synced], series,
        title="Max per-core noise, synchronized stressmarks (paper Fig. 9)",
    )
    peak_sync = max(synced, key=lambda p: p.max_p2p)
    peak_unsync = max(unsynced, key=lambda p: p.max_p2p)
    # Paper claim: sync in non-resonant bands beats unsync at resonance.
    mid_band = [
        p for p in synced if 1e5 <= p.freq_hz <= 1e6
    ]
    mid_band_max = max((p.max_p2p for p in mid_band), default=0.0)
    uplift = [
        s.max_p2p - u.max_p2p for s, u in zip(synced, unsynced)
    ]
    data = {
        "peak_sync_p2p": peak_sync.max_p2p,
        "peak_sync_freq": peak_sync.freq_hz,
        "peak_unsync_p2p": peak_unsync.max_p2p,
        "mean_uplift": sum(uplift) / len(uplift),
        "nonresonant_sync_beats_resonant_unsync": mid_band_max
        > peak_unsync.max_p2p,
        "points_sync": [(p.freq_hz, p.p2p_by_core) for p in synced],
        "points_unsync": [(p.freq_hz, p.p2p_by_core) for p in unsynced],
    }
    return ExperimentResult("fig9", "Noise vs. stimulus frequency (sync)", text, data)
