"""Table I — the EPI profile's first and last five instructions."""

from __future__ import annotations

from ..core.ranking import render_epi_table
from .common import ExperimentContext
from .registry import ExperimentResult, register

#: The paper's published rows (mnemonic, power normalized to SRNM).
PAPER_TOP = [("CIB", 1.58), ("CRB", 1.57), ("BXHG", 1.57), ("CGIB", 1.55), ("CHHSI", 1.55)]
PAPER_BOTTOM = [("DDTRA", 1.01), ("MXTRA", 1.01), ("MDTRA", 1.0), ("STCK", 1.0), ("SRNM", 1.0)]


@register("table1", "EPI profile: first/last five instructions")
def run(context: ExperimentContext) -> ExperimentResult:
    profile = context.generator.epi_profile
    text = render_epi_table(profile, n=5)
    top = [(e.mnemonic, round(e.normalized_power, 3)) for e in profile.top(5)]
    bottom = [(e.mnemonic, round(e.normalized_power, 3)) for e in profile.bottom(5)]
    data = {
        "total_instructions": len(profile),
        "top5": top,
        "bottom5": bottom,
        "paper_top5": PAPER_TOP,
        "paper_bottom5": PAPER_BOTTOM,
        "top5_set_match": {m for m, _ in top} == {m for m, _ in PAPER_TOP},
        "bottom5_set_match": {m for m, _ in bottom} == {m for m, _ in PAPER_BOTTOM},
    }
    return ExperimentResult(
        experiment_id="table1",
        title="EPI profile (first/last five of the ranking)",
        text=text,
        data=data,
    )
