"""Closed-loop control studies (``ctrl-gain``, ``ctrl-attack``).

Not a paper figure: the execution of the paper's §VII-B optimization
opportunity (and its adversarial dual) as online controllers stepping
the transient engine — see :mod:`repro.control.study`.  Both drivers
plan a single nominal baseline run (shared with every other study of
the same worst-case mapping) and post-process it through the stepping
engine, carrying the stepping ≡ monolithic equivalence verdict in
their exported data.
"""

from __future__ import annotations

from ..analysis.report import render_table
from ..control.study import (
    CONTROL_RUN_TAG,
    attack_surface,
    gain_sweep,
    plan_control_experiment,
)
from ..machine.workload import CurrentProgram
from ..plan import RunPlan
from .common import ExperimentContext
from .registry import ExperimentResult, register, register_plan


def control_mapping(context: ExperimentContext) -> list[CurrentProgram | None]:
    """The mapping every control study regulates: the synchronized
    max-dI/dt stressmark at the resonant frequency on all cores — the
    worst case the guard band is provisioned for."""
    mark = context.generator.max_didt(
        freq_hz=context.resonant_freq_hz, synchronize=True
    )
    return [mark.current_program()] * context.chip.n_cores


@register_plan("ctrl-gain")
def plan_ctrl_gain(context: ExperimentContext) -> RunPlan:
    return plan_control_experiment(
        context.chip, control_mapping(context), context.options
    )


def gain_table(data: dict) -> str:
    """Rendered gain-sweep rows (shared by the registered driver and
    the ``repro-noise control`` verb — identical output both ways)."""
    rows = [
        [
            f"{point['gain']:g}",
            f"{point['droop_v'] * 1e3:.1f}",
            f"{point['overshoot_v'] * 1e3:.1f}",
            str(point["settling_window"]),
            str(point["transitions"]),
            str(point["violations"]),
            f"{point['final_bias']:.3f}",
        ]
        for point in data["points"]
    ]
    return render_table(
        [
            "gain Ki",
            "droop (mV)",
            "overshoot (mV)",
            "settling (win)",
            "transitions",
            "violations",
            "final bias",
        ],
        rows,
        title=(
            "Integral power regulator vs gain "
            f"(backend {data['backend']}, "
            f"stepping≡monolithic: {data['stepping_equivalent']})"
        ),
    )


def attack_table(data: dict) -> str:
    """Rendered attack-surface rows (shared by the registered driver
    and the ``repro-noise control`` verb)."""
    rows = [
        [
            str(cell["depth_steps"]),
            str(cell["duration_windows"]),
            cell["alignment"],
            str(cell["violations"]),
            f"{cell['droop_v'] * 1e3:.1f}",
        ]
        for cell in data["cells"]
    ]
    return render_table(
        [
            "depth (steps)",
            "duration (win)",
            "alignment",
            "violations",
            "droop (mV)",
        ],
        rows,
        title=(
            "Undervolting attack surface "
            f"(stress window {data['stress_window']}, "
            f"v_fail {data['v_fail']:.3f} V, "
            f"stepping≡monolithic: {data['stepping_equivalent']})"
        ),
    )


@register("ctrl-gain", "Closed-loop integral regulator: gain sweep")
def run_gain(context: ExperimentContext) -> ExperimentResult:
    mapping = control_mapping(context)
    baseline = context.session.run(mapping, run_tag=CONTROL_RUN_TAG)
    data = gain_sweep(
        context.chip, mapping, context.options, baseline=baseline
    )
    return ExperimentResult(
        "ctrl-gain",
        "Closed-loop integral regulator: gain sweep",
        gain_table(data),
        data,
    )


@register_plan("ctrl-attack")
def plan_ctrl_attack(context: ExperimentContext) -> RunPlan:
    return plan_control_experiment(
        context.chip, control_mapping(context), context.options
    )


@register("ctrl-attack", "Adversarial undervolting attack surface")
def run_attack(context: ExperimentContext) -> ExperimentResult:
    mapping = control_mapping(context)
    baseline = context.session.run(mapping, run_tag=CONTROL_RUN_TAG)
    data = attack_surface(
        context.chip, mapping, context.options, baseline=baseline
    )
    return ExperimentResult(
        "ctrl-attack",
        "Adversarial undervolting attack surface",
        attack_table(data),
        data,
    )
