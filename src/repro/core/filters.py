"""Microarchitectural and IPC filtering (paper Figure 5, steps 3-4).

The combination space (531 441 sequences for nine candidates) is far
too large to measure.  Two cheap model-based filters cut it down:

* **microarchitectural filtering** — discard sequences that provably
  cannot sustain the maximum dispatch rate: average dispatch-group size
  must be exactly the machine width (the paper: "sequences that are
  known to not have an average dispatch group size of 3 are filtered
  out"), plus structural constraints (branch budget, per-issue-class
  multiplicity, non-pipelined-op budget);
* **IPC filtering** — rank the survivors with the analytic throughput
  model and keep the top N (the paper keeps the thousand highest-IPC
  sequences; IPC evaluation is cheap and parallel, power evaluation is
  not).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import GenerationError
from ..isa.instruction import InstructionDef
from ..uarch.grouping import form_groups
from ..uarch.resources import CoreConfig
from ..uarch.throughput import analyze_loop

__all__ = ["FilterConstraints", "FilterStats", "microarch_filter", "ipc_filter"]


@dataclass(frozen=True)
class FilterConstraints:
    """Knobs of the microarchitectural filter."""

    #: Required average dispatch-group size (machine width).
    required_group_size: float = 3.0
    #: Maximum branch-like instructions per sequence.
    max_branches: int = 2
    #: Maximum occurrences of any single issue class per sequence
    #: (beyond the unit's capacity, repeats waste dispatch slots).
    max_per_issue_class: int = 2
    #: Maximum non-pipelined (unit-blocking) operations per sequence.
    max_nonpipelined: int = 0
    #: Maximum memory operations per sequence (load/store port budget
    #: over two groups).
    max_memory: int = 3


@dataclass
class FilterStats:
    """Bookkeeping of a filtering stage (for the Figure 5 funnel)."""

    examined: int = 0
    accepted: int = 0

    @property
    def rejected(self) -> int:
        return self.examined - self.accepted


def microarch_filter(
    sequences: Iterable[tuple[InstructionDef, ...]],
    config: CoreConfig,
    constraints: FilterConstraints | None = None,
) -> tuple[list[tuple[InstructionDef, ...]], FilterStats]:
    """Apply the structural constraints; returns (survivors, stats)."""
    constraints = constraints or FilterConstraints()
    stats = FilterStats()
    survivors: list[tuple[InstructionDef, ...]] = []
    for sequence in sequences:
        stats.examined += 1
        if _passes(sequence, config, constraints):
            survivors.append(sequence)
            stats.accepted += 1
    return survivors, stats


def _passes(
    sequence: tuple[InstructionDef, ...],
    config: CoreConfig,
    constraints: FilterConstraints,
) -> bool:
    branches = 0
    memory = 0
    nonpipelined = 0
    class_counts: Counter[str] = Counter()
    for inst in sequence:
        if inst.is_branch:
            branches += 1
            if branches > constraints.max_branches:
                return False
        if inst.memory:
            memory += 1
            if memory > constraints.max_memory:
                return False
        if not inst.pipelined:
            nonpipelined += 1
            if nonpipelined > constraints.max_nonpipelined:
                return False
        class_counts[inst.issue_class] += 1
        if class_counts[inst.issue_class] > constraints.max_per_issue_class:
            return False
    groups = form_groups(sequence, config)
    return len(sequence) / len(groups) >= constraints.required_group_size


def ipc_filter(
    sequences: Sequence[tuple[InstructionDef, ...]],
    config: CoreConfig,
    keep: int = 1000,
    epi_weights: dict[str, float] | None = None,
) -> tuple[list[tuple[InstructionDef, ...]], FilterStats]:
    """Keep the *keep* highest-IPC sequences.

    Many structurally valid sequences saturate the dispatch width and
    tie at the maximum IPC; breaking those ties by enumeration order
    throws away the heavy mixes the power evaluation is hunting for.
    When *epi_weights* (mnemonic → measured normalized power, i.e. the
    EPI profile — data the methodology already has) is supplied, ties
    prefer the sequences whose members measured hottest; the final
    ordering stays deterministic via the enumeration index.
    """
    if keep < 1:
        raise GenerationError("must keep at least one sequence")
    stats = FilterStats(examined=len(sequences))
    weights = epi_weights or {}

    def weight_sum(sequence: tuple[InstructionDef, ...]) -> float:
        return sum(weights.get(inst.mnemonic, 0.0) for inst in sequence)

    scored = [
        (analyze_loop(sequence, config).ipc, weight_sum(sequence), index)
        for index, sequence in enumerate(sequences)
    ]
    scored.sort(key=lambda row: (-row[0], -row[1], row[2]))
    selected = [sequences[index] for _, _, index in scored[:keep]]
    stats.accepted = len(selected)
    return selected, stats
