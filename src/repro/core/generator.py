"""End-to-end stressmark generation façade.

Wraps the full methodology (EPI profile → max/min/medium power
sequences → stressmark builder) behind one object with caching, so
experiments can ask for "the maximum dI/dt stressmark at 2 MHz,
synchronized, misaligned by 125 ns" in one call.
"""

from __future__ import annotations

from functools import cached_property

from ..errors import GenerationError
from ..mbench.target import Target, default_target
from ..measure.powermeter import PowerMeter
from .epi import EpiProfile, generate_epi_profile
from .mediumpower import DilutedSequence, medium_power_sequence
from .minpower import min_power_sequence
from .search import MaxPowerSearchResult, search_max_power_sequence
from .stressmark import DidtStressmark, StressmarkBuilder, StressmarkSpec

__all__ = ["StressmarkGenerator"]


class StressmarkGenerator:
    """One-stop generator for the reference target.

    All expensive artifacts (EPI profile, search result, builders) are
    computed once and cached on the instance.

    Parameters
    ----------
    target:
        Bound evaluation target; defaults to the reference platform.
    epi_repetitions:
        Loop repetitions for EPI profiling (paper skeleton: 4000).
        Tests lower this for speed; the ranking is unaffected.
    ipc_keep:
        Sequences surviving the IPC filter into power evaluation.
    """

    def __init__(
        self,
        target: Target | None = None,
        seed: int = 0,
        epi_repetitions: int = 400,
        ipc_keep: int = 1000,
    ):
        self.target = target or default_target()
        self.seed = seed
        self.epi_repetitions = epi_repetitions
        self.ipc_keep = ipc_keep

    @cached_property
    def meter(self) -> PowerMeter:
        return PowerMeter(self.target, seed=self.seed)

    @cached_property
    def epi_profile(self) -> EpiProfile:
        """The full-ISA EPI profile (Table I source)."""
        return generate_epi_profile(
            self.target, meter=self.meter, repetitions=self.epi_repetitions
        )

    @cached_property
    def max_power_result(self) -> MaxPowerSearchResult:
        """The Figure 5 search outcome."""
        return search_max_power_sequence(
            self.target, self.epi_profile, meter=self.meter, ipc_keep=self.ipc_keep
        )

    @property
    def max_sequence(self):
        return self.max_power_result.sequence

    @cached_property
    def min_sequence(self):
        return min_power_sequence(self.epi_profile)

    @cached_property
    def max_builder(self) -> StressmarkBuilder:
        return StressmarkBuilder(
            self.target, self.max_sequence, self.min_sequence, name="didt-max"
        )

    @cached_property
    def medium_dilution(self) -> DilutedSequence:
        """High phase of the medium dI/dt stressmark."""
        builder = self.max_builder
        return medium_power_sequence(
            self.target,
            self.max_sequence,
            self.min_sequence,
            max_power_w=builder._high_estimate.watts,
            min_power_w=builder._low_estimate.watts,
        )

    @cached_property
    def medium_builder(self) -> StressmarkBuilder:
        return StressmarkBuilder(
            self.target,
            self.medium_dilution.body,
            self.min_sequence,
            name="didt-med",
        )

    # ------------------------------------------------------------------
    def build(self, spec: StressmarkSpec, level: str = "max") -> DidtStressmark:
        """Build a stressmark at intensity *level* ('max' or 'medium')."""
        if level == "max":
            return self.max_builder.build(spec)
        if level == "medium":
            return self.medium_builder.build(spec)
        raise GenerationError(f"unknown stressmark level {level!r}")

    def max_didt(
        self,
        freq_hz: float,
        synchronize: bool = False,
        misalignment: float = 0.0,
        n_events: int = 1000,
    ) -> DidtStressmark:
        """Convenience: maximum dI/dt stressmark."""
        return self.build(
            StressmarkSpec(
                stimulus_freq_hz=freq_hz,
                synchronize=synchronize,
                misalignment=misalignment,
                n_events=n_events,
            ),
            level="max",
        )

    def medium_didt(
        self,
        freq_hz: float,
        synchronize: bool = False,
        misalignment: float = 0.0,
        n_events: int = 1000,
    ) -> DidtStressmark:
        """Convenience: medium dI/dt stressmark (half the maximum ΔI)."""
        return self.build(
            StressmarkSpec(
                stimulus_freq_hz=freq_hz,
                synchronize=synchronize,
                misalignment=misalignment,
                n_events=n_events,
            ),
            level="medium",
        )
