"""Vectorized sequence-space search (paper Figure 5, steps 2-4 fused).

The scalar pipeline — :func:`~repro.core.sequences.enumerate_sequences`
into :func:`~repro.core.filters.microarch_filter` into
:func:`~repro.core.filters.ipc_filter` — materializes every one of the
9^6 = 531 441 candidate tuples and walks each through the group-forming
automaton and the throughput model one Python call at a time.  That
enumeration dominates stressmark generation wall clock, which in turn
dominates a cold batched campaign (the solves themselves are served by
the compiled chip kernel).

This module evaluates the same funnel over the *index space* instead:
sequences are rows of digits indexing the (small) candidate pool, so
every per-sequence quantity is a gather from a per-candidate attribute
table and the whole space is filtered and scored with array arithmetic.
Only the final ``keep`` winners are materialized as instruction tuples.

Exact-parity contract with the scalar filters (enforced by tests):

* enumeration order is the lexicographic order of
  ``itertools.product`` — digit 0 varies slowest;
* the structural constraints are totals-based (the scalar early-return
  is just short-circuiting of the same threshold checks);
* the dispatch-group automaton is stepped position-by-position with
  vector state, mirroring :func:`~repro.uarch.grouping.form_groups`
  decision for decision;
* IPC scores accumulate per-position in position order (adding 0.0 for
  non-contributing positions, which is exact for the non-negative
  terms involved), so every score is bit-identical to
  :func:`~repro.uarch.throughput.analyze_loop`'s, and the final
  ranking uses the same ``(-ipc, -weight, index)`` key with the unique
  enumeration index as tie-break.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import GenerationError
from ..isa.instruction import InstructionDef
from ..uarch.resources import CoreConfig
from .filters import FilterConstraints, FilterStats
from .sequences import DEFAULT_SEQUENCE_LENGTH

__all__ = ["search_sequence_space"]


def _attribute_tables(
    candidates: Sequence[InstructionDef], config: CoreConfig
) -> dict[str, np.ndarray]:
    """Per-candidate attribute vectors the index-space filters gather
    from."""
    alone = np.array([c.group_alone for c in candidates], dtype=bool)
    ends = np.array([c.ends_group for c in candidates], dtype=bool)
    mem = np.array([c.memory for c in candidates], dtype=bool)
    branch = np.array([c.is_branch for c in candidates], dtype=bool)
    pipelined = np.array([c.pipelined for c in candidates], dtype=bool)
    serializing = np.array([c.serializing for c in candidates], dtype=bool)
    uops = np.array([c.uops for c in candidates], dtype=np.int64)
    latency = np.array([float(c.latency) for c in candidates])
    occupancy = np.where(pipelined, 1.0, latency)
    units = list(dict.fromkeys(c.unit for c in candidates))
    unit_id = np.array([units.index(c.unit) for c in candidates])
    # Same expression, same operand types as the scalar model's
    # ``inst.uops * occupancy / config.unit_count(inst.unit)`` — one
    # float64 value per candidate, reused for every occurrence.
    unit_term = np.array([
        c.uops * (float(c.latency) if not c.pipelined else 1.0)
        / config.unit_count(c.unit)
        for c in candidates
    ])
    penalty = np.where(serializing, latency - 1.0, 0.0)
    classes = list(dict.fromkeys(c.issue_class for c in candidates))
    class_id = np.array([classes.index(c.issue_class) for c in candidates])
    return {
        "alone": alone, "ends": ends, "mem": mem, "branch": branch,
        "pipelined": pipelined, "uops": uops, "unit_id": unit_id,
        "n_units": np.int64(len(units)), "unit_term": unit_term,
        "penalty": penalty, "class_id": class_id,
        "n_classes": np.int64(len(classes)),
    }


def _group_counts(
    idx: np.ndarray, attrs: dict[str, np.ndarray], config: CoreConfig
) -> np.ndarray:
    """Dispatch groups per sequence: :func:`form_groups` stepped with
    vector state over every sequence at once."""
    length, count = idx.shape
    cur = np.zeros(count, dtype=np.int16)       # instructions in the open group
    mic = np.zeros(count, dtype=np.int16)       # memory ops in the open group
    groups = np.zeros(count, dtype=np.int32)
    width = config.dispatch_width
    max_mem = config.max_memory_per_group
    for position in range(length):
        digit = idx[position]
        alone = attrs["alone"][digit]
        memory = attrs["mem"][digit]
        ends = attrs["ends"][digit]
        # group_alone: close the open group, dispatch alone.
        groups += np.where(alone, (cur > 0).astype(np.int32) + 1, 0)
        cur[alone] = 0
        mic[alone] = 0
        rest = ~alone
        # close at dispatch width (the group is non-empty by definition)
        full = rest & (cur >= width)
        groups += full
        cur[full] = 0
        mic[full] = 0
        # close at the per-group memory budget (a no-op on an already
        # empty group, exactly like the scalar close())
        mem_full = rest & memory & (mic >= max_mem)
        groups += mem_full & (cur > 0)
        cur[mem_full] = 0
        mic[mem_full] = 0
        # append
        cur += rest
        mic += rest & memory
        # a group-ending instruction closes the (now non-empty) group
        closing = rest & ends
        groups += closing
        cur[closing] = 0
        mic[closing] = 0
    groups += (cur > 0)
    return groups


def search_sequence_space(
    candidates: Sequence[InstructionDef],
    config: CoreConfig,
    constraints: FilterConstraints | None = None,
    length: int = DEFAULT_SEQUENCE_LENGTH,
    keep: int = 1000,
    epi_weights: dict[str, float] | None = None,
) -> tuple[list[tuple[InstructionDef, ...]], FilterStats, FilterStats]:
    """Run enumeration + microarchitectural filter + IPC filter over
    the full ``len(candidates) ** length`` space.

    Returns ``(finalists, microarch_stats, ipc_stats)`` — element-wise
    identical to chaining the scalar
    :func:`~repro.core.sequences.enumerate_sequences` /
    :func:`~repro.core.filters.microarch_filter` /
    :func:`~repro.core.filters.ipc_filter` pipeline.
    """
    if not candidates:
        raise GenerationError("empty candidate pool")
    if length < 1:
        raise GenerationError("sequence length must be positive")
    if keep < 1:
        raise GenerationError("must keep at least one sequence")
    constraints = constraints or FilterConstraints()
    weights = epi_weights or {}
    attrs = _attribute_tables(candidates, config)
    pool = len(candidates)
    total = pool ** length

    # Index space, lexicographic: digit 0 varies slowest, matching
    # itertools.product enumeration order.
    idx = np.indices((pool,) * length, dtype=np.int32).reshape(length, total)

    # -- microarchitectural filter (totals-based structural checks) --
    ok = (
        (attrs["branch"][idx].sum(axis=0) <= constraints.max_branches)
        & (attrs["mem"][idx].sum(axis=0) <= constraints.max_memory)
        & ((~attrs["pipelined"])[idx].sum(axis=0)
           <= constraints.max_nonpipelined)
    )
    class_digits = attrs["class_id"][idx]
    for issue_class in range(int(attrs["n_classes"])):
        ok &= (
            (class_digits == issue_class).sum(axis=0)
            <= constraints.max_per_issue_class
        )
    del class_digits
    groups = _group_counts(idx, attrs, config)
    ok &= (length / groups) >= constraints.required_group_size
    micro_stats = FilterStats(examined=total, accepted=int(ok.sum()))
    if not micro_stats.accepted:
        return [], micro_stats, FilterStats()

    survivors = np.flatnonzero(ok)          # ascending = enumeration order
    sidx = idx[:, survivors]
    sgroups = groups[survivors].astype(float)
    del idx, groups, ok
    n_survivors = survivors.size

    # -- IPC scoring (bit-identical to analyze_loop, see module doc) --
    uops_total = np.zeros(n_survivors, dtype=np.int64)
    for position in range(length):
        uops_total += attrs["uops"][sidx[position]]
    cycles = sgroups
    for unit in range(int(attrs["n_units"])):
        load = np.zeros(n_survivors)
        for position in range(length):
            digit = sidx[position]
            load = load + np.where(
                attrs["unit_id"][digit] == unit,
                attrs["unit_term"][digit],
                0.0,
            )
        cycles = np.maximum(cycles, load)
    penalty = np.zeros(n_survivors)
    for position in range(length):
        penalty = penalty + attrs["penalty"][sidx[position]]
    cycles = cycles + penalty
    ipc = uops_total / cycles

    weight_table = np.array(
        [weights.get(c.mnemonic, 0.0) for c in candidates]
    )
    weight_sum = np.zeros(n_survivors)
    for position in range(length):
        weight_sum = weight_sum + weight_table[sidx[position]]

    # sort by (-ipc, -weight, survivor index); lexsort's last key is
    # primary and the unique index makes the order total, so stability
    # semantics cannot diverge from the scalar sort.
    order = np.lexsort((np.arange(n_survivors), -weight_sum, -ipc))
    top = order[: min(keep, n_survivors)]
    finalists = [
        tuple(candidates[digit] for digit in sidx[:, row]) for row in top
    ]
    ipc_stats = FilterStats(examined=n_survivors, accepted=len(finalists))
    return finalists, micro_stats, ipc_stats
