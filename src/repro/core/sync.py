"""Synchronization and misalignment planning (paper §V-B/V-C).

For the misalignment sensitivity study the stressmarks are "distributed
evenly within the misalignment range": for a maximum misalignment of
125 ns, two stressmarks synchronize at t = 0, two at 62.5 ns and two at
125 ns.  Because multiple stressmark→core assignments realize the same
offset multiset, the paper executes all of them and averages; the
helpers here produce the offset plan and (a deterministic sample of)
the assignments.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from ..errors import GenerationError
from ..machine.tod import TOD_STEP
from ..rng import stream

__all__ = ["spread_offsets", "offset_assignments"]


def spread_offsets(
    n_workloads: int, max_misalignment: float, step: float = TOD_STEP
) -> list[float]:
    """Evenly distribute *n_workloads* offsets over ``[0, max]``.

    Offsets land on the TOD grid; workloads are spread round-robin over
    the available slots (0, 62.5 ns, ..., max), matching the paper's
    construction.
    """
    if n_workloads < 1:
        raise GenerationError("need at least one workload")
    if max_misalignment < 0:
        raise GenerationError("misalignment cannot be negative")
    steps = max_misalignment / step
    if abs(steps - round(steps)) > 1e-6:
        raise GenerationError("max misalignment must sit on the TOD grid")
    n_slots = int(round(steps)) + 1
    return [(i % n_slots) * step for i in range(n_workloads)]


def offset_assignments(
    offsets: list[float],
    n_cores: int = 6,
    sample: int | None = None,
    seed: int = 0,
) -> Iterator[tuple[float, ...]]:
    """Distinct assignments of the offset multiset to cores.

    Yields tuples ``assignment[core] = offset``.  With ``sample`` set,
    a deterministic subset of that size is yielded instead of all
    permutations (the full multiset permutation count grows as 6!/...).
    """
    if len(offsets) != n_cores:
        raise GenerationError("need exactly one offset per core")
    distinct = sorted(set(itertools.permutations(offsets)))
    if sample is None or sample >= len(distinct):
        yield from distinct
        return
    if sample < 1:
        raise GenerationError("sample size must be positive")
    rng = stream(seed, "offset-assignments", tuple(offsets))
    indices = rng.choice(len(distinct), size=sample, replace=False)
    for index in sorted(int(i) for i in indices):
        yield distinct[index]
