"""The paper's primary contribution: systematic dI/dt stressmark
generation.

The methodology (paper Figure 4) is a pipeline:

1. **EPI profiling** (:mod:`.epi`) — generate one microbenchmark per
   ISA instruction, measure its power, rank (Table I).
2. **Max-power instruction sequence search** (:mod:`.candidates`,
   :mod:`.sequences`, :mod:`.filters`, :mod:`.search` — paper
   Figure 5) — select top candidates per unit/issue class, enumerate
   all length-6 combinations, filter microarchitecturally (dispatch
   group size, branch/class limits), filter by IPC, evaluate the
   survivors' power, pick the winner.
3. **Min/medium-power sequences** (:mod:`.minpower`,
   :mod:`.mediumpower`) — the ranking's tail gives the minimum-power
   sequence (long-latency stalling instructions, not NOPs); a
   dilution search hits any intermediate power target.
4. **Stressmark assembly** (:mod:`.stressmark`, :mod:`.sync` — paper
   Figure 6) — concatenate high/low sequences into a loop sized for a
   target stimulus frequency, with configurable ΔI magnitude, number
   of consecutive ΔI events, and TOD-based synchronization with
   programmable 62.5 ns misalignment.

:mod:`.generator` wraps the pipeline in a single façade;
:mod:`.genetic` implements the black-box genetic-algorithm baseline
(the approach of the AUDIT line of work the paper contrasts with).
"""

from .epi import EpiEntry, EpiProfile, generate_epi_profile
from .ranking import render_epi_table
from .candidates import select_candidates
from .sequences import enumerate_sequences
from .filters import FilterStats, ipc_filter, microarch_filter
from .search import MaxPowerSearchResult, search_max_power_sequence
from .minpower import min_power_program, min_power_sequence
from .mediumpower import medium_power_sequence
from .stressmark import DidtStressmark, StressmarkBuilder, StressmarkSpec
from .sync import spread_offsets, offset_assignments
from .generator import StressmarkGenerator
from .genetic import GeneticSearchResult, genetic_max_power_search

__all__ = [
    "EpiEntry",
    "EpiProfile",
    "generate_epi_profile",
    "render_epi_table",
    "select_candidates",
    "enumerate_sequences",
    "FilterStats",
    "microarch_filter",
    "ipc_filter",
    "MaxPowerSearchResult",
    "search_max_power_sequence",
    "min_power_sequence",
    "min_power_program",
    "medium_power_sequence",
    "StressmarkSpec",
    "DidtStressmark",
    "StressmarkBuilder",
    "spread_offsets",
    "offset_assignments",
    "StressmarkGenerator",
    "GeneticSearchResult",
    "genetic_max_power_search",
]
