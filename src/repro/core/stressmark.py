"""dI/dt stressmark assembly (paper Figure 6).

A stressmark is a loop alternating a high-power and a low-power
instruction sequence, sized so the alternation happens at a target
stimulus frequency, optionally wrapped in TOD synchronization code:

    sync:  spin until TOD low bits match (every 4 ms, + programmed
           62.5 ns misalignment)
    loop:  [high-power sequence x R_hi]  -- duty * period
           [low-power sequence  x R_lo]  -- (1-duty) * period
           repeat for the configured number of consecutive ΔI events
    back to sync

Every knob of the paper's 'white-box' methodology is a field of
:class:`StressmarkSpec`: stimulus frequency, ΔI magnitude (through the
choice of high sequence), number of consecutive ΔI events, duty, and
alignment.  :meth:`DidtStressmark.current_program` compiles the
stressmark to its electrical behavior using the core's power model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import GenerationError
from ..isa.instruction import InstructionDef
from ..machine.tod import SYNC_INTERVAL, TOD_STEP
from ..machine.workload import CurrentProgram, SyncSpec
from ..mbench.codegen import emit_assembly
from ..mbench.loops import build_sequence_loop
from ..mbench.program import Program
from ..mbench.target import Target
from ..uarch.power import estimate_loop_power

__all__ = ["StressmarkSpec", "DidtStressmark", "StressmarkBuilder"]


@dataclass(frozen=True)
class StressmarkSpec:
    """Configuration of one dI/dt stressmark.

    Attributes
    ----------
    stimulus_freq_hz:
        Frequency of ΔI events (one high→low→high cycle per period).
    synchronize:
        Wrap the burst in TOD synchronization (every ``SYNC_INTERVAL``).
    misalignment:
        Programmed offset after each sync point; must be a multiple of
        the 62.5 ns TOD step.  Only meaningful when synchronized.
    n_events:
        Consecutive ΔI events per burst (between sync points).  The
        paper's default is one thousand.
    duty:
        Fraction of the period spent in the high-power phase.
    """

    stimulus_freq_hz: float
    synchronize: bool = False
    misalignment: float = 0.0
    n_events: int = 1000
    duty: float = 0.5

    def __post_init__(self) -> None:
        if self.stimulus_freq_hz <= 0:
            raise GenerationError("stimulus frequency must be positive")
        if self.n_events < 1:
            raise GenerationError("need at least one ΔI event per burst")
        if not 0.0 < self.duty < 1.0:
            raise GenerationError("duty must be in (0, 1)")
        if self.misalignment < 0:
            raise GenerationError("misalignment must be non-negative")
        if self.misalignment > 0:
            steps = self.misalignment / TOD_STEP
            if abs(steps - round(steps)) > 1e-6:
                raise GenerationError(
                    "misalignment must be a multiple of the 62.5 ns TOD step"
                )
        if not self.synchronize and self.misalignment > 0:
            raise GenerationError(
                "misalignment requires synchronization (it offsets the "
                "TOD spin-loop exit)"
            )


@dataclass
class DidtStressmark:
    """A generated stressmark: programs, powers, and its compiled
    electrical behavior."""

    spec: StressmarkSpec
    name: str
    high_body: tuple[InstructionDef, ...]
    low_body: tuple[InstructionDef, ...]
    high_repetitions: int
    low_repetitions: int
    high_power_w: float
    low_power_w: float
    program: Program = field(repr=False)
    vnom: float = 1.05
    rise_time: float = 2e-9

    #: Achieved stimulus frequency: repetition counts are integral, so
    #: the loop's real period can deviate from the request, most visibly
    #: near the feasibility limit (the paper's 100 MHz point).
    achieved_freq_hz: float = 0.0

    @property
    def delta_power_w(self) -> float:
        return self.high_power_w - self.low_power_w

    @property
    def delta_i(self) -> float:
        """ΔI of one event (A)."""
        return self.delta_power_w / self.vnom

    @property
    def achieved_duty(self) -> float:
        """High-phase fraction of the achieved period."""
        return self.spec.duty

    def current_program(self) -> CurrentProgram:
        """Compile to the electrical view the run engine consumes."""
        sync = None
        if self.spec.synchronize:
            sync = SyncSpec(
                offset=self.spec.misalignment,
                events_per_sync=self.spec.n_events,
                interval=SYNC_INTERVAL,
            )
        freq = self.achieved_freq_hz or self.spec.stimulus_freq_hz
        return CurrentProgram(
            name=self.name,
            i_low=self.low_power_w / self.vnom,
            i_high=self.high_power_w / self.vnom,
            freq_hz=freq,
            duty=self.spec.duty,
            rise_time=self.rise_time,
            sync=sync,
        )

    def assembly(self) -> str:
        """Assembler rendering of the stressmark loop."""
        return emit_assembly(self.program)


class StressmarkBuilder:
    """Builds stressmarks from a (high, low) sequence pair.

    The builder owns the phase-length computation: given the sequences'
    cycles-per-iteration, it sizes the repetition counts so one loop
    iteration spans one stimulus period with the requested duty.
    """

    def __init__(
        self,
        target: Target,
        high_sequence: tuple[InstructionDef, ...],
        low_sequence: tuple[InstructionDef, ...],
        name: str = "didt",
    ):
        if not high_sequence or not low_sequence:
            raise GenerationError("high and low sequences must be non-empty")
        self.target = target
        self.high_sequence = tuple(high_sequence)
        self.low_sequence = tuple(low_sequence)
        self.name = name
        model = target.energy_model
        self._high_estimate = estimate_loop_power(list(self.high_sequence), model)
        self._low_estimate = estimate_loop_power(list(self.low_sequence), model)
        if self._high_estimate.watts <= self._low_estimate.watts:
            raise GenerationError(
                "high sequence must out-consume the low sequence "
                f"({self._high_estimate.watts:.2f} W vs "
                f"{self._low_estimate.watts:.2f} W)"
            )
        self._high_cycles = self._high_estimate.profile.cycles
        self._low_cycles = self._low_estimate.profile.cycles

    def phase_repetitions(self, spec: StressmarkSpec) -> tuple[int, int]:
        """(high, low) sequence repetition counts for one period."""
        period_cycles = self.target.core.clock_hz / spec.stimulus_freq_hz
        high_cycles = period_cycles * spec.duty
        low_cycles = period_cycles * (1.0 - spec.duty)
        high_reps = max(int(round(high_cycles / self._high_cycles)), 1)
        low_reps = max(int(round(low_cycles / self._low_cycles)), 1)
        return high_reps, low_reps

    def max_feasible_frequency(self) -> float:
        """Stimulus frequency at which each phase shrinks to a single
        sequence repetition — beyond it the loop cannot alternate any
        faster and the achieved ΔI collapses."""
        min_period_cycles = self._high_cycles + self._low_cycles
        return self.target.core.clock_hz / min_period_cycles

    #: Cap on the number of sequence copies materialized per phase in
    #: the inspectable program.  Real low-frequency stressmarks wrap the
    #: phase in an outer count loop; the electrical behavior depends on
    #: the repetition *count*, which is kept exactly, not on the static
    #: body length.
    MATERIALIZE_CAP = 64

    def build(self, spec: StressmarkSpec) -> DidtStressmark:
        """Assemble the stressmark for *spec*."""
        high_reps, low_reps = self.phase_repetitions(spec)
        body = (
            list(self.high_sequence) * min(high_reps, self.MATERIALIZE_CAP)
            + list(self.low_sequence) * min(low_reps, self.MATERIALIZE_CAP)
        )
        program = build_sequence_loop(
            self.target.isa,
            body,
            unroll=1,
            name=f"{self.name}-{spec.stimulus_freq_hz:.6g}Hz",
            trip_count=spec.n_events if spec.synchronize else None,
        )
        achieved_cycles = (
            high_reps * self._high_cycles + low_reps * self._low_cycles
        )
        achieved_freq = self.target.core.clock_hz / achieved_cycles
        freq_tag = f"{spec.stimulus_freq_hz:.4g}"
        return DidtStressmark(
            spec=spec,
            name=f"{self.name}@{freq_tag}Hz"
            + ("+sync" if spec.synchronize else ""),
            high_body=self.high_sequence,
            low_body=self.low_sequence,
            high_repetitions=high_reps,
            low_repetitions=low_reps,
            high_power_w=self._high_estimate.watts,
            low_power_w=self._low_estimate.watts,
            program=program,
            vnom=self.target.core.vnom,
            rise_time=self.target.core.ramp_time,
            achieved_freq_hz=achieved_freq,
        )
