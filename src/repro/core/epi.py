"""Energy-per-instruction (EPI) profiling.

"The first step required to produce dI/dt stressmarks is the generation
of an energy-per-instruction profile ... a micro-benchmark for each and
every instruction in the ISA.  The micro-benchmark skeleton is an
endless loop with 4000 repetitions of the instruction, without
dependencies.  Micro-benchmarks are run for a few seconds and power and
performance metrics are gathered."  (paper §IV-A)

Profiling every instruction is what surfaces the non-intuitive
candidates (a compare-immediate in the top five) that an expert-driven
selection would miss.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GenerationError
from ..isa.instruction import InstructionDef
from ..mbench.loops import EPI_REPETITIONS, build_epi_loop
from ..mbench.target import Target
from ..measure.counters import read_counters
from ..measure.powermeter import PowerMeter

__all__ = ["EpiEntry", "EpiProfile", "generate_epi_profile"]


@dataclass(frozen=True)
class EpiEntry:
    """One row of the EPI profile.

    ``normalized_power`` is the measured loop power relative to the
    cheapest instruction's (Table I semantics).
    """

    rank: int
    instruction: InstructionDef
    power_w: float
    normalized_power: float
    ipc: float

    @property
    def mnemonic(self) -> str:
        return self.instruction.mnemonic


class EpiProfile:
    """The ranked EPI profile of a target's full ISA."""

    def __init__(self, entries: list[EpiEntry]):
        if not entries:
            raise GenerationError("empty EPI profile")
        self.entries = sorted(entries, key=lambda e: -e.power_w)
        self.entries = [
            EpiEntry(
                rank=i + 1,
                instruction=e.instruction,
                power_w=e.power_w,
                normalized_power=e.normalized_power,
                ipc=e.ipc,
            )
            for i, e in enumerate(self.entries)
        ]
        self._by_mnemonic = {e.mnemonic: e for e in self.entries}

    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, mnemonic: str) -> EpiEntry:
        try:
            return self._by_mnemonic[mnemonic]
        except KeyError:
            raise GenerationError(f"{mnemonic!r} not in EPI profile") from None

    def top(self, n: int) -> list[EpiEntry]:
        """The *n* most power-hungry instructions."""
        return self.entries[:n]

    def bottom(self, n: int) -> list[EpiEntry]:
        """The *n* cheapest instructions (ranking tail)."""
        return self.entries[-n:]

    @property
    def last(self) -> EpiEntry:
        """The cheapest instruction — the min-power sequence candidate."""
        return self.entries[-1]


def generate_epi_profile(
    target: Target,
    meter: PowerMeter | None = None,
    repetitions: int = EPI_REPETITIONS,
    instructions: list[InstructionDef] | None = None,
) -> EpiProfile:
    """Profile every instruction of *target*'s ISA (or a subset).

    Parameters
    ----------
    target:
        The bound evaluation target.
    meter:
        Power meter to use; defaults to a fresh one on the target
        (including its measurement noise, as on hardware).
    repetitions:
        Loop-body repetitions of the profiled instruction; the paper's
        skeleton uses 4000.  Tests may lower this.
    instructions:
        Restrict profiling to a subset (for fast unit tests); the
        normalization point is then the subset's cheapest instruction.
    """
    meter = meter or PowerMeter(target)
    rows: list[tuple[InstructionDef, float, float]] = []
    pool = instructions if instructions is not None else list(target.isa)
    if not pool:
        raise GenerationError("no instructions to profile")
    for inst in pool:
        program = build_epi_loop(target.isa, inst, repetitions=repetitions)
        power = meter.measure(program)
        counters = read_counters(program, target)
        rows.append((inst, power, counters.ipc))
    floor = min(power for _, power, _ in rows)
    entries = [
        EpiEntry(
            rank=0,
            instruction=inst,
            power_w=power,
            normalized_power=power / floor,
            ipc=ipc,
        )
        for inst, power, ipc in rows
    ]
    return EpiProfile(entries)
