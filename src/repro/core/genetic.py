"""Genetic-algorithm stressmark search — the black-box baseline.

The paper positions its white-box methodology against GA-based
automatic stressmark generation (the AUDIT line of work: "it would be
possible to implement optimization algorithms — such as the genetic
algorithms employed in previous works — on top of the presented
solution").  This module implements that baseline so the two approaches
can be compared on equal footing (ablation bench A3): a GA over
length-6 instruction sequences with measured power as fitness.

The comparison the bench makes: the white-box pipeline reaches the
winner with a bounded, explainable budget (model-filtered enumeration +
1000 measurements), while the GA needs measured fitness for every
individual of every generation and provides no insight into *why* the
winner wins.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GenerationError
from ..isa.instruction import InstructionDef
from ..mbench.loops import build_sequence_loop
from ..mbench.target import Target
from ..measure.powermeter import PowerMeter
from ..rng import stream
from .sequences import DEFAULT_SEQUENCE_LENGTH

__all__ = ["GeneticSearchResult", "genetic_max_power_search"]


@dataclass
class GeneticSearchResult:
    """Outcome of the GA baseline."""

    sequence: tuple[InstructionDef, ...]
    power_w: float
    generations: int
    evaluations: int
    history: list[float]  # best fitness per generation

    @property
    def mnemonics(self) -> list[str]:
        return [inst.mnemonic for inst in self.sequence]


def genetic_max_power_search(
    target: Target,
    candidates: list[InstructionDef],
    meter: PowerMeter | None = None,
    population: int = 40,
    generations: int = 25,
    elite: int = 4,
    mutation_rate: float = 0.15,
    tournament: int = 3,
    length: int = DEFAULT_SEQUENCE_LENGTH,
    seed: int = 0,
) -> GeneticSearchResult:
    """GA over length-*length* sequences of *candidates*, maximizing
    measured loop power.

    Classic generational GA: tournament selection, single-point
    crossover, per-gene mutation, elitism.  Fitness evaluations are
    power-meter measurements (with their noise), and each one costs the
    meter's dwell time — which is the budget the comparison bench
    reports.
    """
    if not candidates:
        raise GenerationError("empty candidate pool")
    if population < 4 or elite >= population:
        raise GenerationError("population/elite sizes are inconsistent")
    meter = meter or PowerMeter(target)
    rng = stream(seed, "ga", "search")
    evaluations = 0
    cache: dict[tuple[str, ...], float] = {}

    def fitness(sequence: tuple[InstructionDef, ...]) -> float:
        nonlocal evaluations
        key = tuple(inst.mnemonic for inst in sequence)
        if key not in cache:
            program = build_sequence_loop(
                target.isa, sequence, unroll=21, name="ga-eval"
            )
            cache[key] = meter.measure(program, reading_tag=("ga", evaluations))
            evaluations += 1
        return cache[key]

    def random_individual() -> tuple[InstructionDef, ...]:
        picks = rng.integers(0, len(candidates), size=length)
        return tuple(candidates[int(i)] for i in picks)

    def tournament_pick(scored) -> tuple[InstructionDef, ...]:
        picks = rng.integers(0, len(scored), size=tournament)
        best = max((scored[int(i)] for i in picks), key=lambda pair: pair[1])
        return best[0]

    current = [random_individual() for _ in range(population)]
    history: list[float] = []
    for _ in range(generations):
        scored = [(individual, fitness(individual)) for individual in current]
        scored.sort(key=lambda pair: -pair[1])
        history.append(scored[0][1])
        next_generation = [individual for individual, _ in scored[:elite]]
        while len(next_generation) < population:
            mother = tournament_pick(scored)
            father = tournament_pick(scored)
            cut = int(rng.integers(1, length))
            child = list(mother[:cut] + father[cut:])
            for gene in range(length):
                if rng.random() < mutation_rate:
                    child[gene] = candidates[int(rng.integers(0, len(candidates)))]
            next_generation.append(tuple(child))
        current = next_generation

    final = max(((ind, fitness(ind)) for ind in current), key=lambda p: p[1])
    return GeneticSearchResult(
        sequence=final[0],
        power_w=final[1],
        generations=generations,
        evaluations=evaluations,
        history=history,
    )
