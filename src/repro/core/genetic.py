"""Genetic-algorithm stressmark search — the black-box baseline.

The paper positions its white-box methodology against GA-based
automatic stressmark generation (the AUDIT line of work: "it would be
possible to implement optimization algorithms — such as the genetic
algorithms employed in previous works — on top of the presented
solution").  This module implements that baseline so the two approaches
can be compared on equal footing (ablation bench A3): a GA over
length-6 instruction sequences with measured power as fitness.

The comparison the bench makes: the white-box pipeline reaches the
winner with a bounded, explainable budget (model-filtered enumeration +
1000 measurements), while the GA needs measured fitness for every
individual of every generation and provides no insight into *why* the
winner wins.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.cache import ResultCache, global_cache
from ..engine.executor import Executor, make_executor
from ..engine.fingerprint import content_key
from ..engine.resilience import RetryPolicy
from ..errors import ExecutionError, GenerationError
from ..isa.instruction import InstructionDef
from ..mbench.loops import build_sequence_loop
from ..mbench.target import Target
from ..measure.powermeter import PowerMeter
from ..rng import stream
from ..obs import get_telemetry
from .sequences import DEFAULT_SEQUENCE_LENGTH

__all__ = ["GeneticSearchResult", "genetic_max_power_search"]


@dataclass
class GeneticSearchResult:
    """Outcome of the GA baseline."""

    sequence: tuple[InstructionDef, ...]
    power_w: float
    generations: int
    evaluations: int
    history: list[float]  # best fitness per generation

    @property
    def mnemonics(self) -> list[str]:
        return [inst.mnemonic for inst in self.sequence]


@dataclass
class _FitnessTask:
    """Picklable fitness evaluation of one GA individual.

    The measurement-noise tag is derived from the sequence itself (not
    from an evaluation counter), so a reading is a deterministic
    function of the individual — independent of evaluation order and of
    how warm the shared result cache is.
    """

    target: Target
    meter: PowerMeter

    def __call__(self, sequence: tuple[InstructionDef, ...]) -> float:
        mnemonics = tuple(inst.mnemonic for inst in sequence)
        program = build_sequence_loop(
            self.target.isa, sequence, unroll=21, name="ga-eval"
        )
        return self.meter.measure(program, reading_tag=("ga", mnemonics))


def genetic_max_power_search(
    target: Target,
    candidates: list[InstructionDef],
    meter: PowerMeter | None = None,
    population: int = 40,
    generations: int = 25,
    elite: int = 4,
    mutation_rate: float = 0.15,
    tournament: int = 3,
    length: int = DEFAULT_SEQUENCE_LENGTH,
    seed: int = 0,
    cache: ResultCache | None = None,
    executor: Executor | str | None = None,
    jobs: int | None = None,
    retry: RetryPolicy | None = None,
) -> GeneticSearchResult:
    """GA over length-*length* sequences of *candidates*, maximizing
    measured loop power.

    Classic generational GA: tournament selection, single-point
    crossover, per-gene mutation, elitism.  Fitness evaluations are
    power-meter measurements (with their noise), and each one costs the
    meter's dwell time — which is the budget the comparison bench
    reports.  Readings are memoized in the engine's content-addressed
    cache (keyed by meter identity, target and sequence), and each
    generation's unevaluated individuals are measured as one batch
    through the engine executor under *retry* (env default) — a flaky
    evaluation is retried, a permanently failing individual aborts the
    search rather than breeding on fabricated fitness.
    """
    if not candidates:
        raise GenerationError("empty candidate pool")
    if population < 4 or elite >= population:
        raise GenerationError("population/elite sizes are inconsistent")
    meter = meter or PowerMeter(target)
    if cache is None:
        cache = global_cache()
    if isinstance(executor, (str, type(None))):
        executor = make_executor(executor, jobs)
    retry = retry or RetryPolicy.from_env()
    telemetry = get_telemetry()
    rng = stream(seed, "ga", "search")
    evaluations = 0
    evaluate = _FitnessTask(target, meter)
    meter_identity = (
        "ga-fitness",
        target.isa.name,
        target.core,
        meter.seed,
        meter.noise_sigma,
        meter.temperature_drift,
    )

    def fitness_key(sequence: tuple[InstructionDef, ...]) -> str:
        return content_key(
            *meter_identity, tuple(inst.mnemonic for inst in sequence)
        )

    def evaluate_batch(
        individuals: list[tuple[InstructionDef, ...]]
    ) -> dict[str, float]:
        """Measure every not-yet-cached distinct individual, as one
        executor batch; returns key → fitness for *all* inputs."""
        nonlocal evaluations
        scores: dict[str, float] = {}
        misses: dict[str, tuple[InstructionDef, ...]] = {}
        for individual in individuals:
            key = fitness_key(individual)
            if key in scores or key in misses:
                continue
            cached = cache.get(key)
            if cached is not None:
                scores[key] = cached
            else:
                misses[key] = individual
        if misses:
            keys = list(misses)
            outcomes = executor.map_guarded(
                evaluate,
                [misses[k] for k in keys],
                retry,
                labels=[
                    tuple(inst.mnemonic for inst in misses[k]) for k in keys
                ],
            )
            ga_retries = sum(o.attempts - 1 for o in outcomes)
            if ga_retries:
                telemetry.increment("engine.retries", ga_retries)
            failures = [o.failure for o in outcomes if not o.ok]
            if failures:
                telemetry.increment("engine.failures", len(failures))
                raise ExecutionError(
                    f"{len(failures)} of {len(keys)} GA fitness "
                    f"evaluations failed permanently; first: "
                    f"{failures[0].describe()}",
                    failures,
                ) from failures[0].exception
            for key, outcome in zip(keys, outcomes):
                cache.put(key, float(outcome.value))
                scores[key] = float(outcome.value)
            evaluations += len(keys)
            telemetry.increment("ga.evaluations", len(keys))
            if executor.jobs > 1:
                # Worker-side meters accumulate dwell in their own
                # copies; account the budget on the caller's meter.
                meter.simulated_seconds += len(keys) * meter.dwell_s
        return scores

    def random_individual() -> tuple[InstructionDef, ...]:
        picks = rng.integers(0, len(candidates), size=length)
        return tuple(candidates[int(i)] for i in picks)

    def tournament_pick(scored) -> tuple[InstructionDef, ...]:
        picks = rng.integers(0, len(scored), size=tournament)
        best = max((scored[int(i)] for i in picks), key=lambda pair: pair[1])
        return best[0]

    current = [random_individual() for _ in range(population)]
    history: list[float] = []
    for _ in range(generations):
        generation_scores = evaluate_batch(current)
        scored = [
            (individual, generation_scores[fitness_key(individual)])
            for individual in current
        ]
        scored.sort(key=lambda pair: -pair[1])
        history.append(scored[0][1])
        next_generation = [individual for individual, _ in scored[:elite]]
        while len(next_generation) < population:
            mother = tournament_pick(scored)
            father = tournament_pick(scored)
            cut = int(rng.integers(1, length))
            child = list(mother[:cut] + father[cut:])
            for gene in range(length):
                if rng.random() < mutation_rate:
                    child[gene] = candidates[int(rng.integers(0, len(candidates)))]
            next_generation.append(tuple(child))
        current = next_generation

    final_scores = evaluate_batch(current)
    final = max(
        ((ind, final_scores[fitness_key(ind)]) for ind in current),
        key=lambda p: p[1],
    )
    return GeneticSearchResult(
        sequence=final[0],
        power_w=final[1],
        generations=generations,
        evaluations=evaluations,
        history=history,
    )
