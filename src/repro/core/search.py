"""Max-power instruction sequence search (paper Figure 5, end to end).

Pipeline: candidate selection → full combination enumeration →
microarchitectural filtering → IPC filtering → power evaluation of the
surviving candidates → winner validation on additional chips (power
meters with independent noise).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import GenerationError
from ..isa.instruction import InstructionDef
from ..mbench.loops import build_sequence_loop
from ..mbench.target import Target
from ..measure.powermeter import PowerMeter
from .candidates import select_candidates
from .epi import EpiProfile
from .filters import FilterConstraints, FilterStats
from .seqspace import search_sequence_space
from .sequences import DEFAULT_SEQUENCE_LENGTH, sequence_space_size

__all__ = ["MaxPowerSearchResult", "search_max_power_sequence"]

#: Loop unroll used when measuring a sequence's power: large enough that
#: the loop-closing branch is negligible against the body.
POWER_EVAL_UNROLL = 21


@dataclass
class MaxPowerSearchResult:
    """Outcome and funnel statistics of the search."""

    sequence: tuple[InstructionDef, ...]
    power_w: float
    candidates: list[InstructionDef]
    enumerated: int
    microarch_stats: FilterStats
    ipc_stats: FilterStats
    evaluated: int
    validation_powers: list[float] = field(default_factory=list)

    @property
    def mnemonics(self) -> list[str]:
        return [inst.mnemonic for inst in self.sequence]


def _measure_sequence(
    sequence: tuple[InstructionDef, ...],
    target: Target,
    meter: PowerMeter,
    tag: object,
) -> float:
    program = build_sequence_loop(
        target.isa, sequence, unroll=POWER_EVAL_UNROLL, name="powereval"
    )
    return meter.measure(program, reading_tag=tag)


def search_max_power_sequence(
    target: Target,
    profile: EpiProfile,
    meter: PowerMeter | None = None,
    length: int = DEFAULT_SEQUENCE_LENGTH,
    max_candidates: int = 9,
    ipc_keep: int = 1000,
    constraints: FilterConstraints | None = None,
    validation_chips: int = 2,
) -> MaxPowerSearchResult:
    """Run the full Figure 5 pipeline and return the winning sequence.

    ``validation_chips`` extra power meters (independent noise streams)
    re-measure the winner, mirroring "we validate the sequence on
    different processors to confirm its high power consumption".
    """
    meter = meter or PowerMeter(target)
    candidates = select_candidates(profile, max_candidates=max_candidates)

    # Tie-break metric for the IPC filter: an energy-per-µop proxy built
    # purely from the EPI profiling run's own measurements ("power and
    # performance metrics are gathered"): the dynamic share of the
    # measured loop power divided by the measured µop rate.  The floor
    # loop is nearly pure static power, so the static share is close to
    # the normalized floor of 1.0.
    static_share = 0.98
    epi_weights = {
        entry.mnemonic: max(entry.normalized_power - static_share, 0.0)
        / max(entry.ipc, 1e-6)
        for entry in profile.entries
    }
    # The enumeration + both filters run vectorized over the index
    # space (bit-identical to the scalar microarch_filter/ipc_filter
    # chain); only the finalists are materialized as tuples.
    finalists, micro_stats, ipc_stats = search_sequence_space(
        candidates,
        target.core,
        constraints,
        length=length,
        keep=ipc_keep,
        epi_weights=epi_weights,
    )
    if not finalists:
        raise GenerationError("microarchitectural filter rejected every sequence")

    best_power = -1.0
    best_sequence: tuple[InstructionDef, ...] | None = None
    for index, sequence in enumerate(finalists):
        power = _measure_sequence(sequence, target, meter, tag=("eval", index))
        if power > best_power:
            best_power = power
            best_sequence = sequence
    assert best_sequence is not None  # finalists is non-empty

    validations = [
        _measure_sequence(
            best_sequence,
            target,
            PowerMeter(target, seed=1000 + chip),
            tag="validate",
        )
        for chip in range(validation_chips)
    ]

    return MaxPowerSearchResult(
        sequence=best_sequence,
        power_w=best_power,
        candidates=candidates,
        enumerated=sequence_space_size(len(candidates), length),
        microarch_stats=micro_stats,
        ipc_stats=ipc_stats,
        evaluated=len(finalists),
        validation_powers=validations,
    )
