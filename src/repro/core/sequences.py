"""Sequence candidate generation (paper Figure 5, step 2).

"We generate all possible combinations of length six of these nine
instructions (9^6 = 531 441).  Length six is selected because it is
twice the dispatch group size ... the best trade-off between
combinations explored and experimental time."
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

from ..errors import GenerationError
from ..isa.instruction import InstructionDef

__all__ = ["enumerate_sequences", "sequence_space_size", "DEFAULT_SEQUENCE_LENGTH"]

#: Twice the dispatch group size of the modeled core.
DEFAULT_SEQUENCE_LENGTH = 6


def sequence_space_size(n_candidates: int, length: int = DEFAULT_SEQUENCE_LENGTH) -> int:
    """Size of the combination space (with repetition)."""
    if n_candidates < 1 or length < 1:
        raise GenerationError("need at least one candidate and positive length")
    return n_candidates ** length


def enumerate_sequences(
    candidates: Sequence[InstructionDef],
    length: int = DEFAULT_SEQUENCE_LENGTH,
) -> Iterator[tuple[InstructionDef, ...]]:
    """Yield every length-*length* combination (with repetition,
    position significant) of the candidate pool, in deterministic
    lexicographic order."""
    if not candidates:
        raise GenerationError("empty candidate pool")
    if length < 1:
        raise GenerationError("sequence length must be positive")
    yield from itertools.product(candidates, repeat=length)
