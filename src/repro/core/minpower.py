"""Minimum-power sequence selection.

"We also rely on the EPI profile to define the minimum power sequence.
We select the last instruction of the instruction rank as the minimum
power sequence.  Note that the no-operation instruction (nop) is not
the optimal candidate.  Instead, long-latency instructions (such as
divisions or decimal instructions) are better candidates because they
stall all parts of the processor."  (paper §IV-B)

The model reproduces the mechanism: a trivial-but-fast instruction
keeps dispatching three per cycle and burns front-end energy, while a
serializing or long-latency operation issues once per tens of cycles,
so its loop sits at the machine's floor power.
"""

from __future__ import annotations

from ..isa.instruction import InstructionDef
from ..mbench.loops import build_sequence_loop
from ..mbench.program import Program
from ..mbench.target import Target
from .epi import EpiProfile

__all__ = ["min_power_sequence", "min_power_program"]


def min_power_sequence(profile: EpiProfile) -> tuple[InstructionDef, ...]:
    """The minimum-power sequence: the ranking's last instruction."""
    return (profile.last.instruction,)


def min_power_program(
    profile: EpiProfile, target: Target, unroll: int = 1
) -> Program:
    """A runnable loop of the minimum-power sequence."""
    return build_sequence_loop(
        target.isa,
        min_power_sequence(profile),
        unroll=unroll,
        name="min-power",
        close_with_branch=False,
    )
