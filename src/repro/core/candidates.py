"""Instruction candidate selection (paper Figure 5, step 1).

"We use the EPI profile to categorize the instructions by their
functional unit usage and issue class.  From each category, we select
the top most power-consuming instructions.  Categories with low power
or low IPC are discarded to reduce the number of instruction candidates
to nine, avoiding a design space explosion problem."
"""

from __future__ import annotations

from ..errors import GenerationError
from ..isa.instruction import InstructionDef
from .epi import EpiProfile

__all__ = ["select_candidates"]


def select_candidates(
    profile: EpiProfile,
    max_candidates: int = 9,
    min_power_ratio: float = 1.30,
    min_ipc: float = 0.5,
) -> list[InstructionDef]:
    """Pick the stressmark candidate pool from the EPI profile.

    One instruction per issue class (its most power-hungry member);
    classes whose best member is low power (normalized power below
    *min_power_ratio*) or low IPC (below *min_ipc* µops/cycle) are
    discarded; the surviving class champions are ranked by power and
    capped at *max_candidates*.
    """
    if max_candidates < 2:
        raise GenerationError("need at least two candidates to build sequences")
    champion_by_class: dict[str, object] = {}
    for entry in profile.entries:  # already sorted by descending power
        issue_class = entry.instruction.issue_class
        champion_by_class.setdefault(issue_class, entry)

    kept = [
        entry
        for entry in champion_by_class.values()
        if entry.normalized_power >= min_power_ratio and entry.ipc >= min_ipc
    ]
    kept.sort(key=lambda e: -e.power_w)
    candidates = [entry.instruction for entry in kept[:max_candidates]]
    if len(candidates) < 2:
        raise GenerationError(
            "candidate selection discarded everything; relax the thresholds"
        )
    return candidates
