"""Medium-power (target-power) sequence construction.

The paper's ΔI sensitivity study (Figure 11) needs a stressmark whose
high phase "consumes exactly the average between the maximum and the
minimum power sequence", so that two medium stressmarks generate the
same ΔI as one maximum stressmark.

Power does not mix linearly when sequences are concatenated (the
bottleneck shifts), so the builder searches dilution ratios: loop
bodies made of ``a`` copies of the max-power sequence followed by ``b``
copies of the min-power instruction, picking the (a, b) whose modeled
power is closest to the target.  The same machinery produces sequences
for *any* intermediate power target, which the utilization/guard-band
analysis reuses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GenerationError
from ..isa.instruction import InstructionDef
from ..mbench.target import Target
from ..uarch.power import estimate_loop_power

__all__ = ["DilutedSequence", "medium_power_sequence", "target_power_sequence"]


@dataclass
class DilutedSequence:
    """A dilution of the max-power sequence hitting a power target.

    ``body`` is the loop body; ``power_w`` its modeled power;
    ``target_w`` what was asked for.
    """

    body: tuple[InstructionDef, ...]
    high_copies: int
    low_copies: int
    power_w: float
    target_w: float

    @property
    def error_w(self) -> float:
        return abs(self.power_w - self.target_w)


def target_power_sequence(
    target: Target,
    max_sequence: tuple[InstructionDef, ...],
    min_sequence: tuple[InstructionDef, ...],
    target_power_w: float,
    max_high_copies: int = 24,
    max_low_copies: int = 12,
) -> DilutedSequence:
    """Find the dilution of *max_sequence* with *min_sequence* whose
    steady-state power is closest to *target_power_w*."""
    if max_high_copies < 1 or max_low_copies < 0:
        raise GenerationError("bad dilution search bounds")
    model = target.energy_model
    best: DilutedSequence | None = None
    for high in range(1, max_high_copies + 1):
        for low in range(0, max_low_copies + 1):
            body = tuple(max_sequence) * high + tuple(min_sequence) * low
            power = estimate_loop_power(body, model).watts
            candidate = DilutedSequence(
                body=body,
                high_copies=high,
                low_copies=low,
                power_w=power,
                target_w=target_power_w,
            )
            if best is None or candidate.error_w < best.error_w:
                best = candidate
    assert best is not None
    return best


def medium_power_sequence(
    target: Target,
    max_sequence: tuple[InstructionDef, ...],
    min_sequence: tuple[InstructionDef, ...],
    max_power_w: float,
    min_power_w: float,
) -> DilutedSequence:
    """The paper's medium dI/dt high phase: the average of max and min."""
    if max_power_w <= min_power_w:
        raise GenerationError("max power must exceed min power")
    return target_power_sequence(
        target,
        max_sequence,
        min_sequence,
        target_power_w=0.5 * (max_power_w + min_power_w),
    )
