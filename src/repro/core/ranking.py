"""Rendering of the EPI ranking (paper Table I)."""

from __future__ import annotations

from .epi import EpiProfile

__all__ = ["render_epi_table"]


def render_epi_table(profile: EpiProfile, n: int = 5) -> str:
    """Render the first and last *n* instructions of the ranking in the
    shape of the paper's Table I."""
    width_mn = max(
        [len(e.mnemonic) for e in profile.top(n) + profile.bottom(n)] + [6]
    )
    lines = [
        f"{'Rank':>5}  {'# Instr.':<{width_mn}}  {'Description':<44}  Power",
        "-" * (5 + 2 + width_mn + 2 + 44 + 7),
    ]

    def row(entry) -> str:
        desc = entry.instruction.description[:44]
        return (
            f"{entry.rank:>5}  {entry.mnemonic:<{width_mn}}  {desc:<44}  "
            f"{entry.normalized_power:.2f}"
        )

    for entry in profile.top(n):
        lines.append(row(entry))
    lines.append("  ...")
    for entry in profile.bottom(n):
        lines.append(row(entry))
    return "\n".join(lines)
