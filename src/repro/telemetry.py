"""Deprecated compatibility façade over :mod:`repro.obs.metrics`.

The engine's original flat counter/timer bag lived here; the
observability layer (PR 3) subsumed it into :mod:`repro.obs`, which
adds histograms, hierarchical spans, lifecycle events and the
multiprocess merge.  Existing import sites
(``from repro.telemetry import Telemetry, get_telemetry``) keep
working through this module, but new code should import from
:mod:`repro.obs` — importing this shim emits a
:class:`DeprecationWarning` (every in-tree consumer has migrated).
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.telemetry is deprecated; import from repro.obs instead",
    DeprecationWarning,
    stacklevel=2,
)

from .obs.metrics import (  # noqa: F401,E402
    RESILIENCE_COUNTERS,
    Histogram,
    Span,
    Telemetry,
    capture_telemetry,
    get_telemetry,
    set_telemetry,
)

__all__ = [
    "Telemetry",
    "Histogram",
    "Span",
    "get_telemetry",
    "set_telemetry",
    "capture_telemetry",
    "RESILIENCE_COUNTERS",
]
