"""Lightweight counters and timers for the simulation engine.

Every hot-path component (the run engine, the result cache, the
experiment drivers) reports into a :class:`Telemetry` instance:
monotonically increasing **counters** (runs executed, cache hits and
misses, GA fitness evaluations) and accumulated **timers** (solver
wall-clock, per-experiment wall-clock).  A process-wide default
instance backs all components that are not handed an explicit one, so
``repro-noise run all --profile`` can print a single consolidated
profile of a whole campaign.

The module is dependency-free and cheap enough to leave enabled
unconditionally: a counter bump is a dict update, a timer is two
``perf_counter`` calls.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "Telemetry",
    "get_telemetry",
    "set_telemetry",
    "RESILIENCE_COUNTERS",
]

#: The failure/retry counters the resilience layer reports (kept in one
#: place so the CLI, the exporter and the tests agree on the names).
RESILIENCE_COUNTERS = (
    "engine.retries",                  # extra attempts that succeeded late
    "engine.failures",                 # runs that exhausted their budget
    "engine.timeouts",                 # per-run wall-clock budget hits
    "engine.pool.degraded_to_serial",  # broken pools absorbed in-process
    "engine.pool.chunk_failures",      # chunks re-run after pool faults
    "engine.cache.quarantined",        # torn cache entries recomputed
)


class Telemetry:
    """A bag of named counters and accumulated timers."""

    def __init__(self) -> None:
        self.counters: defaultdict[str, int] = defaultdict(int)
        self.timers: defaultdict[str, float] = defaultdict(float)

    # -- recording ------------------------------------------------------
    def increment(self, name: str, amount: int = 1) -> None:
        """Add *amount* to counter *name*."""
        self.counters[name] += amount

    def observe_seconds(self, name: str, seconds: float) -> None:
        """Accumulate *seconds* under timer *name*."""
        self.timers[name] += seconds

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into timer *name*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe_seconds(name, time.perf_counter() - start)

    # -- reading --------------------------------------------------------
    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def timer(self, name: str) -> float:
        return self.timers.get(name, 0.0)

    def cache_hit_rate(self) -> float:
        """Fraction of engine cache lookups served from cache (0 when
        no lookups happened yet)."""
        hits = self.counter("engine.cache.hits")
        misses = self.counter("engine.cache.misses")
        total = hits + misses
        return hits / total if total else 0.0

    def resilience_summary(self) -> dict[str, int]:
        """The non-zero failure/retry/degradation counters — what a
        post-mortem of a rough campaign looks at first."""
        return {
            name: self.counter(name)
            for name in RESILIENCE_COUNTERS
            if self.counter(name)
        }

    def snapshot(self) -> dict:
        """A JSON-friendly copy of the current state."""
        return {
            "counters": dict(self.counters),
            "timers": {name: round(s, 6) for name, s in self.timers.items()},
            "cache_hit_rate": round(self.cache_hit_rate(), 4),
            "resilience": self.resilience_summary(),
        }

    def reset(self) -> None:
        """Clear all counters and timers."""
        self.counters.clear()
        self.timers.clear()

    # -- rendering ------------------------------------------------------
    def report(self) -> str:
        """A printable profile of everything recorded so far."""
        lines = ["-- telemetry --"]
        if not self.counters and not self.timers:
            lines.append("(nothing recorded)")
            return "\n".join(lines)
        for name in sorted(self.counters):
            lines.append(f"{name:<40} {self.counters[name]}")
        for name in sorted(self.timers):
            lines.append(f"{name:<40} {self.timers[name]:.3f}s")
        lookups = self.counter("engine.cache.hits") + self.counter(
            "engine.cache.misses"
        )
        if lookups:
            lines.append(
                f"{'engine.cache.hit_rate':<40} "
                f"{100.0 * self.cache_hit_rate():.1f}%"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Telemetry(counters={len(self.counters)}, "
            f"timers={len(self.timers)})"
        )


#: Process-wide default instance used by components not handed one.
_GLOBAL = Telemetry()


def get_telemetry() -> Telemetry:
    """The process-wide default :class:`Telemetry` instance."""
    return _GLOBAL


def set_telemetry(telemetry: Telemetry) -> Telemetry:
    """Swap the process-wide default instance (tests, isolated
    campaigns); returns the previous one."""
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = telemetry
    return previous
