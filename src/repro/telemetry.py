"""Compatibility façade over :mod:`repro.obs.metrics`.

The engine's original flat counter/timer bag lived here; the
observability layer (PR 3) subsumed it into :mod:`repro.obs`, which
adds histograms, hierarchical spans, lifecycle events and the
multiprocess merge.  Every existing import site
(``from repro.telemetry import Telemetry, get_telemetry``) keeps
working through this module.
"""

from __future__ import annotations

from .obs.metrics import (  # noqa: F401
    RESILIENCE_COUNTERS,
    Histogram,
    Span,
    Telemetry,
    capture_telemetry,
    get_telemetry,
    set_telemetry,
)

__all__ = [
    "Telemetry",
    "Histogram",
    "Span",
    "get_telemetry",
    "set_telemetry",
    "capture_telemetry",
    "RESILIENCE_COUNTERS",
]
