"""Measurement substrates of the evaluation platform.

Each module models one of the observation mechanisms the paper used on
real silicon:

* :mod:`.skitter` — the on-chip skitter macros (latched-tapped inverter
  delay lines) whose %p2p readout is the paper's primary noise metric;
* :mod:`.counters` — hardware performance counters behind a PCL-style
  API (used to assess generated benchmarks);
* :mod:`.powermeter` — service-element chip power readings with
  milliwatt granularity;
* :mod:`.oscilloscope` — direct voltage trace capture (Figure 8);
* :mod:`.runit` — the recovery unit's failure detection, driven by a
  critical-path timing model;
* :mod:`.vmin` — the Vmin experiment protocol: undervolt in 0.5 % steps
  until first failure, report the available margin.
"""

from .skitter import SkitterConfig, SkitterMacro, SkitterReading
from .counters import CounterReading, read_counters
from .powermeter import PowerMeter
from .oscilloscope import TraceCapture, capture_trace
from .runit import RUnitConfig, RUnit
from .vmin import VminResult, run_vmin_experiment

__all__ = [
    "SkitterConfig",
    "SkitterMacro",
    "SkitterReading",
    "CounterReading",
    "read_counters",
    "PowerMeter",
    "TraceCapture",
    "capture_trace",
    "RUnitConfig",
    "RUnit",
    "VminResult",
    "run_vmin_experiment",
]
