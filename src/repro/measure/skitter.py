"""Skitter macro model: on-chip timing-uncertainty measurement.

The real macro is a latched-tapped delay line of 129 inverters whose
per-stage delay is strongly voltage dependent.  Every cycle the
sampling latches snapshot the line, marking the tap positions where
clock edges sit; supply noise moves those positions, and in sticky mode
the macro records every position touched over a window, so the
peak-to-peak position spread measures worst-case noise while any
workload runs.

The model keeps those mechanics:

* inverter delay follows a power law in voltage,
  ``d(V) = d0 * (Vnom / V)**k`` — delay grows as the supply droops.
  The exponent bundles the device-level sensitivity and the macro's
  calibrated gain; it also produces the documented *loss of linearity*
  between %p2p and voltage at large droops (readings grow convexly).
* edge positions are **quantized to integer taps**, which is why
  measured noise curves move in visible steps (paper Figure 7a).
* the reading is ``%p2p = 100 * (taps(v_max) - taps(v_min)) /
  taps(Vnom)`` — the peak-to-peak tap spread normalized to the nominal
  taps-per-cycle.
* a **simultaneous-switching jitter** term widens the spread when many
  cores fire ΔI events within a short coherence window: the edge
  sampled by the latches accumulates delay-line jitter from the fast
  collective di/dt that a lumped PDN cannot resolve spatially.  The
  runner computes the coherent-ΔI metric; the macro converts it to an
  equivalent droop through ``ssn_gain``.  (Documented substitution —
  see DESIGN.md §1 and §4.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import MeasurementError

__all__ = ["SkitterConfig", "SkitterReading", "SkitterMacro"]


@dataclass(frozen=True)
class SkitterConfig:
    """Electrical configuration of a skitter macro.

    Attributes
    ----------
    taps:
        Inverter count of the delay line.
    inverter_delay:
        Nominal per-stage delay at ``vnom`` (s); the real macros sit
        between 5 and 8 ps depending on threshold voltage/technology.
    clock_hz:
        Sampled clock frequency.
    vnom:
        Calibration voltage.
    voltage_exponent:
        Delay sensitivity exponent ``k``.
    ssn_gain:
        Volts of equivalent droop per ampere of coherent ΔI.
    """

    taps: int = 129
    inverter_delay: float = 6.5e-12
    clock_hz: float = 5.5e9
    vnom: float = 1.05
    voltage_exponent: float = 3.3
    ssn_gain: float = 0.80e-3

    def __post_init__(self) -> None:
        if self.taps < 8:
            raise MeasurementError("delay line too short")
        if self.inverter_delay <= 0 or self.clock_hz <= 0 or self.vnom <= 0:
            raise MeasurementError("skitter physical parameters must be positive")
        if self.voltage_exponent <= 0:
            raise MeasurementError("voltage exponent must be positive")


@dataclass
class SkitterReading:
    """One %p2p readout.

    ``taps_min``/``taps_max`` expose the quantized tap counts behind the
    percentage, mirroring the bit-string nature of the real readout.
    """

    p2p_pct: float
    taps_min: int
    taps_max: int
    taps_nominal: int


class SkitterMacro:
    """A skitter macro instance at one chip location.

    ``sensitivity`` models per-macro process variation (threshold
    voltage shifts scale the voltage exponent).

    Use :meth:`observe` to feed voltage extremes (sticky mode keeps
    accumulating), :meth:`read` for the current reading and
    :meth:`reset` to clear the sticky state.
    """

    def __init__(
        self, config: SkitterConfig, location: str, sensitivity: float = 1.0
    ):
        if sensitivity <= 0:
            raise MeasurementError("sensitivity must be positive")
        self.config = config
        self.location = location
        self.sensitivity = sensitivity
        self._v_min: float | None = None
        self._v_max: float | None = None

    # -- physics --------------------------------------------------------
    def inverter_delay(self, volts: float) -> float:
        """Per-stage delay at supply voltage *volts*."""
        if volts <= 0:
            raise MeasurementError("supply voltage must be positive")
        exponent = self.config.voltage_exponent * self.sensitivity
        return self.config.inverter_delay * (self.config.vnom / volts) ** exponent

    def taps_per_cycle(self, volts: float) -> int:
        """Quantized tap count one clock period spans at *volts*."""
        period = 1.0 / self.config.clock_hz
        return int(math.floor(period / self.inverter_delay(volts)))

    # -- sticky accumulation ---------------------------------------------
    def observe(
        self, v_min: float, v_max: float, coherent_delta_i: float = 0.0
    ) -> None:
        """Accumulate one observation window.

        ``coherent_delta_i`` is the maximum ΔI (A) that fired within the
        macro's coherence window during the observation; it deepens the
        effective minimum voltage via the simultaneous-switching term.
        """
        if v_max < v_min:
            raise MeasurementError("v_max below v_min")
        if coherent_delta_i < 0:
            raise MeasurementError("coherent ΔI cannot be negative")
        effective_min = v_min - self.config.ssn_gain * coherent_delta_i
        self._v_min = effective_min if self._v_min is None else min(self._v_min, effective_min)
        self._v_max = v_max if self._v_max is None else max(self._v_max, v_max)

    def reset(self) -> None:
        """Clear the sticky state."""
        self._v_min = None
        self._v_max = None

    # -- readout ----------------------------------------------------------
    def read(self) -> SkitterReading:
        """Current sticky %p2p reading."""
        if self._v_min is None or self._v_max is None:
            raise MeasurementError(
                f"skitter {self.location!r} has no observations"
            )
        taps_nominal = self.taps_per_cycle(self.config.vnom)
        taps_min = self.taps_per_cycle(self._v_min)   # slow line -> few taps
        taps_max = self.taps_per_cycle(self._v_max)   # fast line -> many taps
        p2p = 100.0 * (taps_max - taps_min) / taps_nominal
        return SkitterReading(
            p2p_pct=p2p,
            taps_min=taps_min,
            taps_max=taps_max,
            taps_nominal=taps_nominal,
        )
