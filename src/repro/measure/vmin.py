"""The Vmin experiment: find the voltage margin by undervolting to
first failure.

Protocol, as on the platform: starting from nominal, the operating
voltage is lowered in 0.5 % steps (with a two-minute dwell per step on
hardware — tracked here as simulated turnaround time) until the R-Unit
reports the first error; the system then reboots.  The *available
margin* is the bias reduction that was survived.

Under the linear PDN, scaling the VRM setpoint by a bias ``b`` scales
the whole waveform: node voltages at bias ``b`` are
``b * vnom + (v(t) - vnom)`` — the droops are set by the load currents,
which do not shrink with the supply (slightly pessimistic: on silicon
the current would *grow* as V drops for constant power, making low-bias
noise worse; the protocol and ordering are unaffected).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine import SimulationSession
from ..errors import MeasurementError
from ..machine.chip import Chip
from ..machine.runner import RunOptions
from ..machine.system import VOLTAGE_STEP, ServiceElement
from ..machine.workload import CurrentProgram
from ..plan.spec import RunPlan
from .runit import RUnit, RUnitConfig

__all__ = ["VminResult", "plan_vmin_experiment", "run_vmin_experiment"]

#: The run tag every Vmin experiment executes under — the plan
#: compiler and the executor must agree on it byte-for-byte.
VMIN_RUN_TAG = "vmin"

#: Hardware dwell per voltage step (the paper: 0.5 % every two minutes).
DWELL_MINUTES_PER_STEP = 2.0


@dataclass
class VminResult:
    """Outcome of one Vmin experiment.

    Attributes
    ----------
    margin_frac:
        Available margin: fraction of nominal voltage removed before
        the first failure (e.g. 0.035 = 3.5 %).
    fail_bias:
        Bias at which the first error occurred.
    steps_survived:
        Number of 0.5 % steps survived.
    simulated_minutes:
        Hardware turnaround this experiment would have consumed.
    worst_vmin_nominal:
        Deepest instantaneous voltage at nominal bias (V).
    """

    margin_frac: float
    fail_bias: float
    steps_survived: int
    simulated_minutes: float
    worst_vmin_nominal: float


def plan_vmin_experiment(
    chip: Chip,
    mapping: list[CurrentProgram | None],
    options: RunOptions | None = None,
    figure: str | None = None,
) -> RunPlan:
    """The declarative form of :func:`run_vmin_experiment`: the single
    nominal-bias run it needs (the undervolting walk itself is pure
    post-processing of that waveform)."""
    plan = RunPlan.for_chip(chip)
    plan.add(mapping, VMIN_RUN_TAG, options or RunOptions(), figure)
    return plan


def run_vmin_experiment(
    chip: Chip,
    mapping: list[CurrentProgram | None],
    runit_config: RUnitConfig | None = None,
    options: RunOptions | None = None,
    max_steps: int = 40,
    session: SimulationSession | None = None,
) -> VminResult:
    """Undervolt in 0.5 % steps until the R-Unit sees the first error.

    The workload's noise waveform is measured once at nominal (through
    the engine session, so a mapping another study already solved
    replays from the result cache); each bias step rescales the supply
    component, exactly as the physical experiment holds the workload
    fixed while walking the VRM setpoint.
    """
    if max_steps < 1:
        raise MeasurementError("need at least one undervolt step")
    session = session or SimulationSession(chip, options)
    result = session.run(mapping, run_tag=VMIN_RUN_TAG)
    worst_nominal = result.worst_vmin
    droop_below_nominal = chip.vnom - worst_nominal
    if droop_below_nominal < 0:
        raise MeasurementError("waveform never drops below nominal; check loads")

    service = ServiceElement(chip)
    runit = RUnit(runit_config or RUnitConfig(), chip.vnom)
    service.reset_voltage()

    steps = 0
    while steps < max_steps:
        v_worst = service.bias * chip.vnom - droop_below_nominal
        if runit.check(v_worst):
            break
        steps += 1
        service.step_down()
    else:
        # Name the chip, the workload and the final operating point:
        # near-margin debugging means figuring out *which* experiment
        # of a multi-chip, multi-workload campaign never failed.
        workload = ",".join(sorted(
            {program.name for program in mapping if program is not None}
        )) or "all-idle"
        raise MeasurementError(
            f"vmin search on chip {chip.chip_id} (workload "
            f"{workload!r}): no failure within {max_steps} bias steps "
            f"(final bias {service.bias:.4f}, worst instantaneous "
            f"vmin at that bias "
            f"{service.bias * chip.vnom - droop_below_nominal:.4f} V, "
            f"R-Unit threshold {runit.v_fail:.4f} V); the threshold "
            f"is not reachable for this workload"
        )

    fail_bias = service.bias
    # Margin available = bias removed before the failing step.
    margin = (steps - 1) * VOLTAGE_STEP if steps > 0 else 0.0
    service.reset_voltage()
    return VminResult(
        margin_frac=margin,
        fail_bias=fail_bias,
        steps_survived=max(steps - 1, 0),
        simulated_minutes=steps * DWELL_MINUTES_PER_STEP,
        worst_vmin_nominal=worst_nominal,
    )
