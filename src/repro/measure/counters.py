"""Hardware performance counters behind a PCL-style API.

The paper gathers performance-counter data through the standard Linux
performance counter API to assess generated benchmarks (IPC filtering
runs on these numbers).  The model evaluates a program on the modeled
core and returns the counters a profiling run would report, with a
small seeded measurement jitter so that repeated "runs" are not
byte-identical — the methodology must be robust to that, as it is on
hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MeasurementError
from ..mbench.program import Program
from ..mbench.target import Target
from ..rng import stream

__all__ = ["CounterReading", "read_counters"]


@dataclass(frozen=True)
class CounterReading:
    """Counter snapshot over one sampling interval.

    ``ipc`` follows the paper's footnote: µops executed per cycle
    (which for a CISC architecture differs from instructions committed
    per cycle).
    """

    cycles: int
    instructions: int
    uops: int
    ipc: float
    group_size_avg: float


def read_counters(
    program: Program,
    target: Target,
    duration_s: float = 2.0,
    jitter: float = 0.002,
    seed: int = 0,
) -> CounterReading:
    """Sample the counters while *program* runs for *duration_s*.

    ``jitter`` is the relative 1σ measurement noise on the cycle count.
    """
    if duration_s <= 0:
        raise MeasurementError("sampling duration must be positive")
    profile = target.profile(program)
    iterations = duration_s * target.core.clock_hz / profile.cycles
    rng = stream(seed, "counters", program.name)
    noise = 1.0 + float(rng.normal(0.0, jitter)) if jitter > 0 else 1.0
    cycles = max(int(iterations * profile.cycles * noise), 1)
    instructions = int(iterations * len(program.loop_body))
    uops = int(iterations * profile.uops)
    return CounterReading(
        cycles=cycles,
        instructions=instructions,
        uops=uops,
        ipc=uops / cycles,
        group_size_avg=profile.avg_group_size,
    )
