"""Oscilloscope trace capture of die voltage (paper Figure 8).

The authors confirmed skitter readings with direct oscilloscope
measurements of the core supply.  Here the scope reads the same
waveform the PDN solution produces — an honest but weaker check than on
silicon (see DESIGN.md §6) — cropped and resampled the way a scope shot
is."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine import SimulationSession
from ..errors import MeasurementError
from ..machine.chip import Chip
from ..machine.runner import RunOptions
from ..machine.workload import CurrentProgram
from ..plan.spec import RunPlan

__all__ = ["TraceCapture", "plan_capture_trace", "capture_trace"]

#: The run tag every scope capture executes under.
SCOPE_RUN_TAG = "oscilloscope"


def scope_options(options: RunOptions | None) -> RunOptions:
    """The scope variant of *options*: waveform collection on, one
    segment — exactly what :func:`capture_trace`'s derived session
    runs under, so planned and executed fingerprints agree."""
    from dataclasses import replace

    return replace(
        options or RunOptions(), collect_waveforms=True, segments=1
    )


def plan_capture_trace(
    chip: Chip,
    mapping: list[CurrentProgram | None],
    options: RunOptions | None = None,
    figure: str | None = None,
) -> RunPlan:
    """The declarative form of :func:`capture_trace`."""
    plan = RunPlan.for_chip(chip)
    plan.add(mapping, SCOPE_RUN_TAG, scope_options(options), figure)
    return plan


@dataclass
class TraceCapture:
    """One captured voltage trace.

    Attributes
    ----------
    times, volts:
        The waveform, uniformly resampled.
    node:
        Observed PDN node.
    """

    times: np.ndarray
    volts: np.ndarray
    node: str

    @property
    def peak_to_peak(self) -> float:
        return float(self.volts.max() - self.volts.min())

    def crop(self, start: float, stop: float) -> "TraceCapture":
        """A sub-window of the capture (e.g. a single stimulus period)."""
        if stop <= start:
            raise MeasurementError("empty crop window")
        mask = (self.times >= start) & (self.times <= stop)
        if not mask.any():
            raise MeasurementError("crop window contains no samples")
        return TraceCapture(self.times[mask], self.volts[mask], self.node)


def capture_trace(
    chip: Chip,
    mapping: list[CurrentProgram | None],
    node: str = "core0",
    samples: int = 4000,
    options: RunOptions | None = None,
    session: SimulationSession | None = None,
) -> TraceCapture:
    """Run *mapping* once and capture the voltage at *node*.

    The capture window covers the simulated burst (a 20 µs-class shot
    at the paper's 2 MHz stimulus).  The run executes through a scope
    variant of the session (waveform collection on, one segment) — the
    caller's options are copied, never mutated.
    """
    session = session or SimulationSession(chip, options)
    scope = session.derive(collect_waveforms=True, segments=1)
    result = scope.run(mapping, run_tag=SCOPE_RUN_TAG)
    if node not in result.waveforms:
        raise MeasurementError(f"node {node!r} was not recorded")
    times, volts = result.waveforms[node]
    uniform = np.linspace(times[0], times[-1], samples)
    return TraceCapture(uniform, np.interp(uniform, times, volts), node)
