"""Recovery-unit (R-Unit) failure model.

These systems detect execution errors with a recovery unit that
checkpoints architected state; in Vmin experiments, "errors are
detected using the R-Unit".  An error occurs when some critical path
misses its cycle because the instantaneous supply voltage dropped too
low: critical-path delay grows as voltage falls, and the path fails
once delay exceeds the cycle time.

Model: the chip's slowest path meets timing with margin at nominal
voltage; its delay follows the same power-law voltage sensitivity the
skitter's delay line shows.  The path fails when

    (v_fail_threshold / v_inst) ** alpha > 1    i.e.  v_inst < v_fail_threshold

with ``v_fail_threshold`` expressed as a fraction of nominal — the
single calibration point of the model.  The monotone mapping means the
first-failing circuit path is always the one with the least voltage
slack, which is also what the paper's extra Vmin instrumentation
reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["RUnitConfig", "RUnit"]


@dataclass(frozen=True)
class RUnitConfig:
    """Failure-detection configuration.

    ``v_fail_frac`` — instantaneous voltage, as a fraction of the
    nominal supply, below which the critical path misses timing and the
    R-Unit records an error.
    """

    v_fail_frac: float = 0.846

    def __post_init__(self) -> None:
        if not 0.5 < self.v_fail_frac < 1.0:
            raise ConfigError("v_fail_frac must be within (0.5, 1.0)")


class RUnit:
    """Error detector for one chip."""

    def __init__(self, config: RUnitConfig, vnom: float):
        if vnom <= 0:
            raise ConfigError("nominal voltage must be positive")
        self.config = config
        self.vnom = vnom
        self.error_count = 0

    @property
    def v_fail(self) -> float:
        """Absolute failure threshold (V)."""
        return self.config.v_fail_frac * self.vnom

    def check(self, v_worst: float) -> bool:
        """Check one observation window.

        Returns True (and records an error) when the worst instantaneous
        voltage violated the critical path's requirement.
        """
        failed = v_worst < self.v_fail
        if failed:
            self.error_count += 1
        return failed

    def reset(self) -> None:
        """Clear the error log (system reboot)."""
        self.error_count = 0
