"""Chip-level power measurement.

Power readings on the platform come from the service element, which
samples current and voltage on the chip's input rails with milliwatt
granularity.  Two properties of real power measurement shape the
paper's methodology and are modeled here:

* readings carry run-to-run noise, so candidate sequences must be
  compared on the same chip under the same conditions ("power
  evaluations have to be done on the same processor with the same
  experimental conditions for a fair comparison");
* power evaluation is slow relative to IPC evaluation — the meter
  integrates over a dwell time.  The model tracks a simulated
  evaluation cost so the search pipeline can report the experimental
  budget it would have consumed on hardware.
"""

from __future__ import annotations

from ..errors import MeasurementError
from ..mbench.program import Program
from ..mbench.target import Target
from ..rng import stream

__all__ = ["PowerMeter"]


class PowerMeter:
    """Input-rail power meter for one core's workload.

    ``noise_sigma`` is the relative 1σ of a single reading;
    ``temperature_drift`` adds a slowly varying chip-state component
    that is common to readings taken close together in time (modeled
    per measurement session).
    """

    def __init__(
        self,
        target: Target,
        seed: int = 0,
        noise_sigma: float = 0.004,
        temperature_drift: float = 0.002,
        dwell_s: float = 5.0,
    ):
        if noise_sigma < 0 or temperature_drift < 0:
            raise MeasurementError("noise parameters cannot be negative")
        if dwell_s <= 0:
            raise MeasurementError("dwell time must be positive")
        self.target = target
        self.seed = seed
        self.noise_sigma = noise_sigma
        self.temperature_drift = temperature_drift
        self.dwell_s = dwell_s
        self.simulated_seconds = 0.0
        self._session_factor = 1.0 + float(
            stream(seed, "powermeter", "session").normal(0.0, temperature_drift)
        ) if temperature_drift > 0 else 1.0

    def measure(self, program: Program, reading_tag: object = 0) -> float:
        """One power reading (W, mW-quantized) of *program* running on
        one core."""
        true_power = self.target.power(program).watts
        rng = stream(self.seed, "powermeter", program.name, reading_tag)
        noise = 1.0 + float(rng.normal(0.0, self.noise_sigma)) if self.noise_sigma else 1.0
        self.simulated_seconds += self.dwell_s
        return round(true_power * noise * self._session_factor, 3)

    def measure_average(self, program: Program, repeats: int = 3) -> float:
        """Average of *repeats* readings (the paper averages repeated
        runs)."""
        if repeats < 1:
            raise MeasurementError("need at least one reading")
        readings = [self.measure(program, tag) for tag in range(repeats)]
        return sum(readings) / len(readings)
