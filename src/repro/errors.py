"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the failing subsystem.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "NetlistError",
    "SolverError",
    "IsaError",
    "UarchError",
    "GenerationError",
    "MeasurementError",
    "ExperimentError",
    "GuardbandProfileError",
    "ConfigError",
    "ConcurrencyError",
    "ControlError",
    "ExecutionError",
    "RunTimeoutError",
    "ProtocolError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class NetlistError(ReproError):
    """The PDN netlist is malformed (unknown node, invalid element value,
    disconnected graph, missing capacitor on an internal node, ...)."""


class SolverError(ReproError):
    """A PDN solver failed (singular system, non-finite solution,
    unsupported time base, ...)."""


class IsaError(ReproError):
    """An ISA definition problem: duplicate mnemonic, unknown instruction,
    invalid operand specification, ..."""


class UarchError(ReproError):
    """A microarchitecture-model problem: unknown functional unit, invalid
    dispatch configuration, sequence that cannot be scheduled, ..."""


class GenerationError(ReproError):
    """Stressmark or microbenchmark generation failed (empty candidate
    pool, infeasible stimulus frequency, inconsistent knob settings)."""


class MeasurementError(ReproError):
    """A measurement substrate was misused (skitter window empty,
    Vmin search exhausted its bias range, ...)."""


class ExperimentError(ReproError):
    """An experiment driver failed or was queried for an unknown id."""


class GuardbandProfileError(ExperimentError):
    """A guard-band utilization profile is unusable: empty, a single
    degenerate entry, negative occupancy, or fractions that do not sum
    to one — savings computed from it would be meaningless."""


class ControlError(ReproError):
    """A closed-loop control session was misused (stepping past the end
    of the run, actuating a finished session, unknown or expired serve
    session id, invalid actuation)."""


class ConcurrencyError(ReproError):
    """Two live writers raced for the same durable resource (e.g. two
    shard processes pointed at one campaign manifest)."""


class ExecutionError(ReproError):
    """A run could not be completed by the execution layer even after
    its retry budget was exhausted (worker crash, persistent exception,
    repeated timeout).  Carries the structured
    :class:`~repro.engine.resilience.RunFailure` records when raised by
    the engine."""

    def __init__(self, message: str, failures: list | None = None):
        super().__init__(message)
        self.failures = failures or []


class RunTimeoutError(ExecutionError):
    """A single run exceeded its per-run wall-clock budget
    (``run_timeout_s``)."""


class ProtocolError(ReproError):
    """A malformed simulation-service request or reply (unparseable
    JSON line, unknown field, non-servable option)."""

