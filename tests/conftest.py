"""Shared fixtures.

Expensive artifacts (the bound target with its energy model, the
reference chip with its modal decomposition, the stressmark generator
with its EPI profile and search result) are session scoped: the suite
builds each of them once.
"""

from __future__ import annotations

import pytest

from repro.core.generator import StressmarkGenerator
from repro.machine.chip import reference_chip
from repro.machine.runner import RunOptions
from repro.mbench.target import default_target
from repro.pdn.netlist import Netlist
from repro.pdn.topology import build_chip_netlist
from repro.pdn.zec12 import reference_chip_parameters


@pytest.fixture(scope="session")
def target():
    """The bound reference target (ISA + core + energy model)."""
    bound = default_target()
    bound.energy_model  # force the lazy build once
    return bound


@pytest.fixture(scope="session")
def isa(target):
    return target.isa


@pytest.fixture(scope="session")
def core_config(target):
    return target.core


@pytest.fixture(scope="session")
def generator(target):
    """Stressmark generator with reduced EPI loop length (ranking is
    unaffected; see core/epi docstring)."""
    gen = StressmarkGenerator(target=target, epi_repetitions=60, ipc_keep=150)
    return gen


@pytest.fixture(scope="session")
def chip():
    """The reference chip (modal decomposition + response library are
    built lazily on first use and cached)."""
    return reference_chip()


@pytest.fixture(scope="session")
def chip_netlist():
    return build_chip_netlist(reference_chip_parameters())


@pytest.fixture()
def light_options():
    """Cheap runner options for per-test runs."""
    return RunOptions(segments=2, base_samples=1024)


@pytest.fixture(scope="session")
def session_options():
    """Moderate runner options for session-cached measurement sets."""
    return RunOptions(segments=4, base_samples=2048)


@pytest.fixture(scope="session")
def max_stressmark(generator):
    """The resonant synchronized max dI/dt stressmark, compiled."""
    return generator.max_didt(freq_hz=2.6e6, synchronize=True)


def rc_netlist(r: float = 1.0, c: float = 1e-6, esr: float = 1e-3) -> Netlist:
    """A minimal source→R→node(C) network used by several PDN tests."""
    net = Netlist("rc")
    net.add_voltage_port("vin", "src")
    net.add_resistor("r1", "src", "out", r)
    net.add_capacitor("c1", "out", c, esr=esr)
    net.add_current_port("load", "out")
    net.validate()
    return net
