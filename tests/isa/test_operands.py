"""Operand model tests."""

from repro.isa.operands import (
    BRANCH_ONLY,
    CMP_IMM_BRANCH,
    REG_REG_REG,
    Operand,
    OperandKind,
)


class TestOperand:
    def test_defaults(self):
        op = Operand(OperandKind.GPR)
        assert not op.is_written
        assert op.width_bits == 64

    def test_str_shows_direction(self):
        assert str(Operand(OperandKind.GPR, True)) == "gpr:w64"
        assert str(Operand(OperandKind.IMMEDIATE, width_bits=8)) == "imm:r8"

    def test_signatures_shapes(self):
        assert len(REG_REG_REG) == 3
        assert REG_REG_REG[0].is_written
        assert not REG_REG_REG[1].is_written
        assert len(BRANCH_ONLY) == 1
        assert BRANCH_ONLY[0].kind is OperandKind.LABEL
        assert CMP_IMM_BRANCH[-1].kind is OperandKind.LABEL

    def test_kinds_are_distinct(self):
        values = {kind.value for kind in OperandKind}
        assert len(values) == len(OperandKind)
