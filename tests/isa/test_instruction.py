"""Instruction definition invariants."""

import pytest

from repro.errors import IsaError
from repro.isa.instruction import FUNCTIONAL_UNITS, InstructionDef


def make(mnemonic="TST", **kw):
    defaults = dict(
        description="test instruction",
        family="fixed-point",
        unit="FXU",
        issue_class="FXU.arith",
    )
    defaults.update(kw)
    return InstructionDef(mnemonic=mnemonic, **defaults)


class TestValidation:
    def test_valid_minimal(self):
        inst = make()
        assert inst.uops == 1
        assert inst.pipelined

    def test_unknown_unit_rejected(self):
        with pytest.raises(IsaError, match="functional unit"):
            make(unit="XYZ")

    def test_zero_uops_rejected(self):
        with pytest.raises(IsaError):
            make(uops=0)

    def test_zero_latency_rejected(self):
        with pytest.raises(IsaError):
            make(latency=0)

    def test_power_weight_floor(self):
        with pytest.raises(IsaError, match="normalized"):
            make(power_weight=0.9)

    def test_serializing_implies_group_alone(self):
        with pytest.raises(IsaError, match="dispatch alone"):
            make(serializing=True, group_alone=False)
        make(serializing=True, group_alone=True)  # consistent form is fine

    def test_empty_mnemonic_rejected(self):
        with pytest.raises(IsaError):
            make(mnemonic="")


class TestProperties:
    def test_is_branch_follows_ends_group(self):
        assert make(ends_group=True).is_branch
        assert not make().is_branch

    def test_functional_units_cover_model(self):
        assert {"FXU", "LSU", "BRU", "BFU", "DFU", "VXU", "SYS", "COP"} == set(
            FUNCTIONAL_UNITS
        )

    def test_str_is_mnemonic(self):
        assert str(make("ABC")) == "ABC"

    def test_frozen(self):
        inst = make()
        with pytest.raises(AttributeError):
            inst.latency = 5
