"""Tests of the full synthetic ISA build and its Table I anchors."""

import pytest

from repro.errors import IsaError
from repro.isa.families import DEFAULT_FAMILIES, FamilySpec, generate_family
from repro.isa.zmainframe import (
    DEFAULT_ISA_SEED,
    PINNED_BOTTOM,
    PINNED_TOP,
    build_zmainframe_isa,
)


class TestIsaBuild:
    def test_instruction_count_matches_paper(self, isa):
        assert len(isa) == 1301

    def test_deterministic_across_builds(self, isa):
        again = build_zmainframe_isa(DEFAULT_ISA_SEED)
        assert again.mnemonics == isa.mnemonics
        for mnemonic in ("CIB", "ALR", "VAB"):
            if mnemonic in isa:
                assert isa[mnemonic].power_weight == again[mnemonic].power_weight

    def test_different_seed_changes_generated_weights(self, isa):
        other = build_zmainframe_isa(DEFAULT_ISA_SEED + 1)
        generated = [m for m in isa.mnemonics if m not in PINNED_TOP + PINNED_BOTTOM]
        changed = sum(
            isa[m].power_weight != other[m].power_weight for m in generated[:50]
        )
        assert changed > 25

    def test_pinned_weights_are_extremes(self, isa):
        ranked = sorted(isa, key=lambda i: -i.power_weight)
        assert [i.mnemonic for i in ranked[:5]] == list(PINNED_TOP)
        assert [i.mnemonic for i in ranked[-5:]] == list(PINNED_BOTTOM)

    def test_pinned_values_match_paper(self, isa):
        assert isa["CIB"].power_weight == pytest.approx(1.58)
        assert isa["CRB"].power_weight == pytest.approx(1.57)
        assert isa["SRNM"].power_weight == 1.0

    def test_srnm_is_serializing_long_latency(self, isa):
        srnm = isa["SRNM"]
        assert srnm.serializing
        assert srnm.group_alone
        assert srnm.latency >= 20

    def test_dfp_multiplies_are_unit_blocking(self, isa):
        for mnemonic in ("DDTRA", "MXTRA", "MDTRA"):
            assert not isa[mnemonic].pipelined
            assert isa[mnemonic].unit == "DFU"

    def test_compare_branch_family_ends_groups(self, isa):
        for inst in isa.by_family()["compare-branch"]:
            assert inst.ends_group

    def test_lookup_unknown_raises(self, isa):
        with pytest.raises(IsaError):
            isa["NOSUCH"]

    def test_categorizations_partition(self, isa):
        families = isa.by_family()
        assert sum(len(v) for v in families.values()) == len(isa)
        units = isa.by_unit()
        assert sum(len(v) for v in units.values()) == len(isa)
        classes = isa.by_issue_class()
        assert sum(len(v) for v in classes.values()) == len(isa)

    def test_every_unit_is_populated(self, isa):
        assert set(isa.by_unit()) == {
            "FXU", "LSU", "BRU", "BFU", "DFU", "VXU", "SYS", "COP"
        }


class TestFamilyGeneration:
    def test_exact_counts(self, isa):
        families = isa.by_family()
        for spec in DEFAULT_FAMILIES:
            pinned_extra = {
                "compare-branch": 4, "compare": 1, "decimal-fp": 3, "system": 2,
            }.get(spec.name, 0)
            assert len(families[spec.name]) == spec.count + pinned_extra

    def test_power_ranges_respected(self, isa):
        pinned = set(PINNED_TOP) | set(PINNED_BOTTOM)
        families = isa.by_family()
        for spec in DEFAULT_FAMILIES:
            lo, hi = spec.power_range
            for inst in families[spec.name]:
                if inst.mnemonic in pinned:
                    continue
                assert lo <= inst.power_weight <= hi, inst.mnemonic

    def test_generated_weights_below_pinned_top(self, isa):
        pinned = set(PINNED_TOP)
        ceiling = min(isa[m].power_weight for m in PINNED_TOP)
        for inst in isa:
            if inst.mnemonic not in pinned:
                assert inst.power_weight < ceiling

    def test_mnemonic_collision_avoidance(self):
        spec = FamilySpec(
            name="tiny",
            unit="FXU",
            issue_class="FXU.arith",
            count=10,
            roots=[("A", "Add")],
            forms=[("R", "register"), ("G", "(64)")],
            power_range=(1.1, 1.2),
        )
        taken = {"AR"}  # force a collision with the first combo
        out = generate_family(spec, 1, taken)
        assert len(out) == 10
        assert len({i.mnemonic for i in out}) == 10
        assert "AR" not in {i.mnemonic for i in out}

    def test_bad_spec_rejected(self):
        with pytest.raises(IsaError):
            FamilySpec(
                name="bad", unit="FXU", issue_class="x", count=0,
                roots=[("A", "a")], forms=[("", "")], power_range=(1.1, 1.2),
            )
        with pytest.raises(IsaError):
            FamilySpec(
                name="bad", unit="FXU", issue_class="x", count=1,
                roots=[("A", "a")], forms=[("", "")], power_range=(0.5, 1.2),
            )
