"""Tests for the deterministic random stream derivation."""

import numpy as np

from repro.rng import SeedSequenceFactory, derive_seed, stream


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_path_sensitivity(self):
        assert derive_seed(42, "a", 1) != derive_seed(42, "a", 2)
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_root_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_no_concatenation_ambiguity(self):
        # ("ab",) and ("a", "b") must differ.
        assert derive_seed(0, "ab") != derive_seed(0, "a", "b")

    def test_64_bit_range(self):
        seed = derive_seed(123, "anything")
        assert 0 <= seed < 2**64


class TestStream:
    def test_same_name_same_sequence(self):
        a = stream(7, "noise", 0).random(5)
        b = stream(7, "noise", 0).random(5)
        assert np.array_equal(a, b)

    def test_different_names_independent(self):
        a = stream(7, "noise", 0).random(5)
        b = stream(7, "noise", 1).random(5)
        assert not np.array_equal(a, b)

    def test_order_independent(self):
        # Drawing stream X before or after stream Y does not change X.
        first = stream(9, "x").random(3)
        stream(9, "y").random(100)
        second = stream(9, "x").random(3)
        assert np.array_equal(first, second)


class TestFactory:
    def test_factory_matches_free_functions(self):
        factory = SeedSequenceFactory(99)
        assert factory.seed("a", 2) == derive_seed(99, "a", 2)
        assert np.array_equal(
            factory.stream("a").random(4), stream(99, "a").random(4)
        )
