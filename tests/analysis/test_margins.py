"""Customer-code margin extrapolation tests."""

import pytest

from repro.analysis.margins import customer_margin_line
from repro.errors import ExperimentError
from repro.machine.runner import RunOptions
from repro.machine.workload import CurrentProgram, SyncSpec
from repro.measure.vmin import run_vmin_experiment


def max_mark(sync=True):
    return CurrentProgram(
        "m", i_low=14.0, i_high=34.0, freq_hz=2.6e6, rise_time=11e-9,
        sync=SyncSpec() if sync else None,
    )


@pytest.fixture(scope="module")
def options():
    return RunOptions(segments=2, base_samples=1024)


class TestCustomerMarginLine:
    def test_customer_margin_exceeds_stressmark(self, chip, options):
        stressmark = run_vmin_experiment(chip, [max_mark()] * 6, options=options)
        customer = customer_margin_line(chip, max_mark(sync=False), options=options)
        # ~80% ΔI without sync leaves more margin than the full
        # synchronized stressmark.
        assert customer.margin_frac > stressmark.margin_frac

    def test_customer_program_derates_delta_i(self, chip, options):
        full = max_mark(sync=False)
        low_fraction = customer_margin_line(
            chip, full, delta_i_fraction=0.4, options=options
        )
        high_fraction = customer_margin_line(
            chip, full, delta_i_fraction=1.0, options=options
        )
        assert low_fraction.margin_frac >= high_fraction.margin_frac

    def test_invalid_fraction_rejected(self, chip, options):
        with pytest.raises(ExperimentError):
            customer_margin_line(
                chip, max_mark(sync=False), delta_i_fraction=0.0,
                options=options,
            )

    def test_customer_is_unsynchronized(self, chip, options):
        # Even handed a synchronized stressmark, the customer derivative
        # must drop the sync (real code does not align swings).
        result = customer_margin_line(chip, max_mark(sync=True), options=options)
        assert result.margin_frac > 0.0
