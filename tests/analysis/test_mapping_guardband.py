"""Workload mapping optimization and guard-banding policy tests."""

import itertools

import pytest

from repro.analysis.guardband import GuardbandPolicy, build_policy, guardband_savings
from repro.analysis.mapping import enumerate_mappings, mapping_extremes
from repro.analysis.sensitivity import DeltaIMappingPoint
from repro.errors import ExperimentError, GuardbandProfileError
from repro.machine.runner import RunOptions
from repro.machine.workload import CurrentProgram, SyncSpec


def didt():
    return CurrentProgram(
        "m", i_low=14.0, i_high=32.0, freq_hz=2.6e6, rise_time=11e-9,
        sync=SyncSpec(),
    )


@pytest.fixture(scope="module")
def options():
    return RunOptions(segments=2, base_samples=1024)


class TestEnumerateMappings:
    def test_counts_combinations(self, chip, options):
        study = enumerate_mappings(chip, didt(), 2, options)
        assert len(study.outcomes) == 15  # C(6,2)
        assert {len(o.cores) for o in study.outcomes} == {2}

    def test_best_no_worse_than_worst(self, chip, options):
        study = enumerate_mappings(chip, didt(), 3, options)
        assert study.best.worst_noise <= study.worst.worst_noise
        assert study.reduction_opportunity >= 0.0

    def test_same_cluster_is_worst_for_three(self, options):
        """Figure 14's effect: packing three stressmarks into one row
        is worse than spreading them across the rows.  Uses a chip with
        equalized skitter sensitivities so the comparison isolates the
        PDN clustering (not per-core process variation)."""
        from repro.machine.chip import reference_chip
        from repro.machine.runner import ChipRunner
        from repro.machine.workload import idle_program

        uniform = reference_chip()
        for macro in uniform.skitters:
            macro.sensitivity = 1.0
        runner = ChipRunner(uniform)
        idle = idle_program(13.5)

        def worst(cores):
            mapping = [didt() if c in cores else idle for c in range(6)]
            result = runner.run(mapping, options, run_tag=("row", cores))
            return max(
                result.measurements[c].droop for c in range(6)
            )

        same_row = worst((0, 2, 4))
        cross_row = worst((0, 1, 3))
        assert same_row > cross_row

    def test_zero_workloads(self, chip, options):
        study = enumerate_mappings(chip, didt(), 0, options)
        assert len(study.outcomes) == 1
        assert study.reduction_opportunity == 0.0

    def test_invalid_count_rejected(self, chip, options):
        with pytest.raises(ExperimentError):
            enumerate_mappings(chip, didt(), 7, options)

    def test_extremes_driver(self, chip, options):
        studies = mapping_extremes(chip, didt(), [0, 6], options)
        assert set(studies) == {0, 6}
        assert studies[6].reduction_opportunity == 0.0  # no freedom


class TestGuardbandPolicy:
    def make_points(self):
        points = []
        noise_by_cores = {0: 2.0, 1: 12.0, 2: 22.0, 3: 30.0, 4: 38.0, 5: 45.0, 6: 52.0}
        for cores, noise in noise_by_cores.items():
            points.append(
                DeltaIMappingPoint(
                    mapping_id=cores,
                    placement=("max",) * cores + ("idle",) * (6 - cores),
                    distribution=(cores, 0),
                    delta_i_pct=100.0 * cores / 6,
                    p2p_by_core=[noise] * 6,
                    active_cores=cores,
                )
            )
        return points

    def test_policy_monotone_in_core_count(self):
        policy = build_policy(self.make_points())
        margins = [policy.margin_for(k) for k in range(7)]
        assert margins == sorted(margins)

    def test_static_margin_is_full_load(self):
        policy = build_policy(self.make_points())
        assert policy.static_margin == policy.margin_for(6)

    def test_voltage_scale_below_one_when_underutilized(self):
        policy = build_policy(self.make_points())
        assert policy.voltage_scale(1) < 1.0
        assert policy.voltage_scale(6) == pytest.approx(1.0)

    def test_power_scale_is_square_law(self):
        policy = build_policy(self.make_points())
        v = policy.voltage_scale(2)
        assert policy.power_scale(2) == pytest.approx(v * v)

    def test_savings_zero_at_full_utilization(self):
        policy = build_policy(self.make_points())
        profile = {5: 0.0, 6: 1.0}  # all time at full load
        assert guardband_savings(policy, profile) == pytest.approx(0.0)

    def test_empty_profile_raises_named_error(self):
        policy = build_policy(self.make_points())
        with pytest.raises(GuardbandProfileError):
            guardband_savings(policy, {})

    def test_single_entry_profile_raises_named_error(self):
        policy = build_policy(self.make_points())
        with pytest.raises(GuardbandProfileError):
            guardband_savings(policy, {6: 1.0})

    def test_negative_share_raises_named_error(self):
        policy = build_policy(self.make_points())
        with pytest.raises(GuardbandProfileError):
            guardband_savings(policy, {1: -0.5, 6: 1.5})

    def test_profile_error_is_an_experiment_error(self):
        # Callers catching the historical ExperimentError keep working.
        assert issubclass(GuardbandProfileError, ExperimentError)

    def test_savings_grow_with_idleness(self):
        policy = build_policy(self.make_points())
        light = guardband_savings(policy, {1: 0.8, 6: 0.2})
        heavy = guardband_savings(policy, {5: 0.8, 6: 0.2})
        assert light > heavy > 0.0

    def test_profile_must_sum_to_one(self):
        policy = build_policy(self.make_points())
        with pytest.raises(ExperimentError):
            guardband_savings(policy, {1: 0.5})

    def test_unknown_core_count_rejected(self):
        policy = build_policy(self.make_points())
        with pytest.raises(ExperimentError):
            policy.margin_for(9)

    def test_empty_dataset_rejected(self):
        with pytest.raises(ExperimentError):
            build_policy([])
