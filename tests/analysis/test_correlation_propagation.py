"""Correlation/cluster detection and propagation analysis tests."""

import numpy as np
import pytest

from repro.analysis.correlation import correlation_matrix, detect_clusters
from repro.analysis.propagation import propagation_traces
from repro.analysis.sensitivity import DeltaIMappingPoint
from repro.errors import ExperimentError


def point(mapping_id, noise):
    return DeltaIMappingPoint(
        mapping_id=mapping_id,
        placement=("max",) * 6,
        distribution=(6, 0),
        delta_i_pct=100.0,
        p2p_by_core=list(noise),
        active_cores=6,
    )


class TestCorrelationMatrix:
    def test_perfectly_correlated_pair(self):
        rng = np.random.default_rng(0)
        base = rng.uniform(20, 60, size=12)
        points = [
            point(k, [b, b, b + 1, 2 * b, 30.0 + 0.1 * k, 40.0 + (-1) ** k])
            for k, b in enumerate(base)
        ]
        matrix = correlation_matrix(points)
        assert matrix.shape == (6, 6)
        assert np.allclose(np.diag(matrix), 1.0)
        assert matrix[0, 1] == pytest.approx(1.0)
        assert matrix[0, 3] == pytest.approx(1.0)  # linear scaling

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        points = [point(k, rng.uniform(10, 60, 6)) for k in range(10)]
        matrix = correlation_matrix(points)
        assert np.allclose(matrix, matrix.T)

    def test_too_few_points_rejected(self):
        with pytest.raises(ExperimentError):
            correlation_matrix([point(0, [1] * 6)])

    def test_zero_variance_rejected(self):
        points = [point(k, [10.0] * 6) for k in range(5)]
        with pytest.raises(ExperimentError):
            correlation_matrix(points)


class TestClusterDetection:
    def test_block_structure_recovered(self):
        # Build a correlation matrix with {0,2,4} / {1,3,5} blocks.
        matrix = np.full((6, 6), 0.91)
        for group in ((0, 2, 4), (1, 3, 5)):
            for a in group:
                for b in group:
                    matrix[a, b] = 0.99
        np.fill_diagonal(matrix, 1.0)
        clusters = detect_clusters(matrix)
        assert sorted(map(tuple, clusters)) == [(0, 2, 4), (1, 3, 5)]

    def test_two_core_matrix(self):
        matrix = np.array([[1.0, 0.5], [0.5, 1.0]])
        clusters = detect_clusters(matrix)
        assert sorted(map(tuple, clusters)) == [(0,), (1,)]

    def test_bad_shape_rejected(self):
        with pytest.raises(ExperimentError):
            detect_clusters(np.ones((2, 3)))


class TestPropagation:
    @pytest.fixture(scope="class")
    def trace(self, chip):
        return propagation_traces(chip, source_core=0, delta_i=18.0)

    def test_source_droops_most(self, trace):
        assert trace.peak_droop_by_core[0] == max(trace.peak_droop_by_core)

    def test_same_row_stronger_than_cross_row(self, trace):
        same = [trace.peak_droop_by_core[c] for c in (2, 4)]
        cross = [trace.peak_droop_by_core[c] for c in (1, 3, 5)]
        assert min(same) > max(cross)

    def test_same_row_arrives_no_later(self, trace):
        same = [trace.time_to_10pct_by_core[c] for c in (2, 4)]
        cross = [trace.time_to_10pct_by_core[c] for c in (1, 3, 5)]
        assert max(same) <= min(cross)

    def test_waveform_shapes(self, trace):
        assert len(trace.volts_by_core) == 6
        for wave in trace.volts_by_core:
            assert wave.shape == trace.times.shape
            # t=0 carries only the instantaneous resistive feedthrough;
            # the droop keeps deepening afterwards.
            assert wave.min() < wave[0] <= 0.0

    def test_scales_with_delta_i(self, chip):
        small = propagation_traces(chip, delta_i=9.0, samples=500)
        large = propagation_traces(chip, delta_i=18.0, samples=500)
        assert large.peak_droop_by_core[0] == pytest.approx(
            2 * small.peak_droop_by_core[0], rel=1e-6
        )

    def test_guards(self, chip):
        with pytest.raises(ExperimentError):
            propagation_traces(chip, source_core=9)
        with pytest.raises(ExperimentError):
            propagation_traces(chip, delta_i=-1.0)
