"""Mitigation mechanism tests: scheduler, staggering, guard-band
controller, global ΔI throttle."""

import numpy as np
import pytest

from repro.analysis.guardband import build_policy
from repro.analysis.sensitivity import DeltaIMappingPoint
from repro.errors import ExperimentError
from repro.machine.runner import RunOptions
from repro.machine.workload import CurrentProgram, SyncSpec, idle_program
from repro.mitigation.guardband import GuardbandController
from repro.mitigation.scheduler import NoiseAwareScheduler
from repro.mitigation.staggering import evaluate_stagger, plan_stagger
from repro.mitigation.throttle import GlobalDidtThrottle
from repro.workloads.traces import UtilizationTrace


def didt(sync=True):
    return CurrentProgram(
        "m", i_low=14.0, i_high=32.0, freq_hz=2.6e6, rise_time=11e-9,
        sync=SyncSpec() if sync else None,
    )


@pytest.fixture(scope="module")
def options():
    return RunOptions(segments=2, base_samples=1024)


class TestScheduler:
    @pytest.fixture(scope="class")
    def scheduler(self, chip, options):
        return NoiseAwareScheduler(chip, didt(), options)

    def test_placement_beats_adversary(self, scheduler):
        placement = scheduler.place(3)
        assert placement.worst_noise <= placement.worst_alternative
        assert placement.noise_saved >= 0.0
        assert len(placement.cores) == 3

    def test_margin_saved_conversion(self, scheduler):
        placement = scheduler.place(3)
        assert scheduler.margin_saved(3) == pytest.approx(
            placement.noise_saved * scheduler.volts_per_p2p_point
        )

    def test_studies_replay_from_engine_cache(self, scheduler):
        first = scheduler.study(2)
        executed = scheduler.session.telemetry.counter("engine.runs_executed")
        second = scheduler.study(2)
        # The study is rebuilt but no placement is re-solved.
        assert (
            scheduler.session.telemetry.counter("engine.runs_executed")
            == executed
        )
        assert [o.p2p_by_core for o in first.outcomes] == [
            o.p2p_by_core for o in second.outcomes
        ]

    def test_opportunity_profile_shape(self, scheduler):
        profile = scheduler.opportunity_profile()
        assert set(profile) == set(range(7))
        assert profile[0] == 0.0
        assert profile[6] == 0.0

    def test_invalid_count(self, scheduler):
        with pytest.raises(ExperimentError):
            scheduler.place(9)


class TestStaggering:
    def test_plan_targets_synced_cores_only(self):
        mapping = [didt(sync=True)] * 3 + [didt(sync=False)] + [None] * 2
        plan = plan_stagger(mapping)
        assert plan.staggered_cores == (0, 1, 2)
        assert plan.offsets[3] == 0.0
        assert plan.offsets[4] == 0.0

    def test_offsets_spread_over_window(self):
        plan = plan_stagger([didt()] * 6, window_steps=5)
        assert len(set(plan.offsets)) > 1
        assert max(plan.offsets) <= plan.window

    def test_apply_preserves_everything_but_offsets(self):
        mapping = [didt()] * 6
        plan = plan_stagger(mapping)
        adjusted = plan.apply(mapping)
        for original, new in zip(mapping, adjusted):
            assert new.i_high == original.i_high
            assert new.freq_hz == original.freq_hz
        offsets = [p.sync.offset for p in adjusted]
        assert offsets == list(plan.offsets)

    def test_stagger_reduces_worst_case_noise(self, chip, options):
        outcome = evaluate_stagger(chip, [didt()] * 6, options=options)
        assert outcome.staggered.max_p2p <= outcome.baseline.max_p2p
        assert outcome.noise_reduction >= 0.0
        assert outcome.reduction_factor >= 1.0

    def test_nothing_to_stagger(self, chip, options):
        idle = idle_program(13.5)
        plan = plan_stagger([idle] * 6)
        assert plan.staggered_cores == ()

    def test_guards(self):
        with pytest.raises(ExperimentError):
            plan_stagger([didt()] * 5)
        with pytest.raises(ExperimentError):
            plan_stagger([didt()] * 6, window_steps=0)


def make_policy():
    points = []
    for cores, noise in {0: 2.0, 1: 12.0, 2: 22.0, 3: 30.0,
                         4: 38.0, 5: 45.0, 6: 52.0}.items():
        points.append(
            DeltaIMappingPoint(
                mapping_id=cores,
                placement=("max",) * cores + ("idle",) * (6 - cores),
                distribution=(cores, 0),
                delta_i_pct=100.0 * cores / 6,
                p2p_by_core=[noise] * 6,
                active_cores=cores,
            )
        )
    return build_policy(points)


class TestGuardbandController:
    @pytest.fixture(scope="class")
    def controller(self, chip):
        return GuardbandController(chip, make_policy())

    def test_bias_monotone_in_active_cores(self, controller):
        biases = [controller.bias_for(k) for k in range(7)]
        assert biases == sorted(biases)
        assert biases[6] == 1.0

    def test_never_under_provisions(self, controller):
        trace = UtilizationTrace(
            counts=np.array([0, 1, 2, 3, 4, 5, 6, 3, 1]), interval_s=60.0
        )
        run = controller.run(trace)
        assert run.min_headroom >= 0.0

    def test_savings_positive_when_idle(self, controller):
        idle_trace = UtilizationTrace(counts=np.array([1] * 10), interval_s=60.0)
        busy_trace = UtilizationTrace(counts=np.array([6] * 10), interval_s=60.0)
        assert controller.run(idle_trace).energy_saving > 0.0
        assert controller.run(busy_trace).energy_saving == pytest.approx(0.0)

    def test_transition_accounting(self, controller):
        trace = UtilizationTrace(counts=np.array([1, 6, 1, 6]), interval_s=60.0)
        run = controller.run(trace)
        assert run.transitions == 3

    def test_trace_beyond_schedule_rejected(self, chip):
        policy = make_policy()
        del policy.margin_by_active_cores[6]
        controller = GuardbandController(chip, policy)
        trace = UtilizationTrace(counts=np.array([6]), interval_s=60.0)
        with pytest.raises(ExperimentError):
            controller.run(trace)


class TestThrottle:
    def test_monitor_bound_scales_with_cores(self, chip):
        throttle = GlobalDidtThrottle(chip, budget_amps=50.0)
        two = throttle.worst_coherent_delta_i([didt()] * 2 + [None] * 4)
        six = throttle.worst_coherent_delta_i([didt()] * 6)
        assert six > two > 0.0

    def test_within_budget_means_no_derate(self, chip):
        throttle = GlobalDidtThrottle(chip, budget_amps=1e6)
        assert throttle.required_derate([didt()] * 6) == 1.0

    def test_derate_meets_budget(self, chip):
        throttle = GlobalDidtThrottle(chip, budget_amps=40.0)
        mapping = [didt()] * 6
        derate = throttle.required_derate(mapping)
        assert 0.0 < derate < 1.0
        throttled = throttle.apply(mapping, derate)
        assert throttle.worst_coherent_delta_i(throttled) == pytest.approx(
            40.0, rel=1e-6
        )

    def test_evaluation_trades_noise_for_throughput(self, chip, options):
        throttle = GlobalDidtThrottle(chip, budget_amps=40.0)
        outcome = throttle.evaluate([didt()] * 6, options)
        assert outcome.noise_reduction > 0.0
        assert 0.0 < outcome.throughput_cost < 0.5
        assert outcome.points_per_throughput_pct > 0.0

    def test_guards(self, chip):
        with pytest.raises(ExperimentError):
            GlobalDidtThrottle(chip, budget_amps=0.0)
        throttle = GlobalDidtThrottle(chip, budget_amps=10.0)
        with pytest.raises(ExperimentError):
            throttle.apply([didt()] * 6, derate=0.0)
        with pytest.raises(ExperimentError):
            throttle.worst_coherent_delta_i([didt()] * 5)
