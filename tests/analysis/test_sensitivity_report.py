"""Sensitivity sweep drivers and report rendering tests."""

import pytest

from repro.analysis.report import render_series, render_table
from repro.analysis.sensitivity import (
    default_frequency_grid,
    sweep_delta_i_mappings,
    sweep_misalignment,
    sweep_stimulus_frequency,
)
from repro.errors import ExperimentError
from repro.machine.runner import RunOptions
from repro.machine.tod import TOD_STEP


@pytest.fixture(scope="module")
def options():
    return RunOptions(segments=2, base_samples=1024)


class TestFrequencyGrid:
    def test_log_spacing(self):
        grid = default_frequency_grid(1e3, 1e6, points_per_decade=2)
        assert grid[0] == pytest.approx(1e3)
        assert grid[-1] == pytest.approx(1e6)
        assert len(grid) == 7

    def test_bad_bounds_rejected(self):
        with pytest.raises(ExperimentError):
            default_frequency_grid(1e6, 1e3)


class TestFrequencySweep:
    def test_points_and_resonance(self, generator, chip, options):
        freqs = [3e5, 2.6e6, 2e7]
        points = sweep_stimulus_frequency(
            generator, chip, freqs, synchronize=True, options=options
        )
        assert [p.freq_hz for p in points] == freqs
        by_freq = {p.freq_hz: p.max_p2p for p in points}
        assert by_freq[2.6e6] >= by_freq[3e5]
        assert by_freq[2.6e6] >= by_freq[2e7]

    def test_sync_uplift(self, generator, chip, options):
        freqs = [2.6e6]
        synced = sweep_stimulus_frequency(
            generator, chip, freqs, synchronize=True, options=options
        )[0]
        unsynced = sweep_stimulus_frequency(
            generator, chip, freqs, synchronize=False, options=options
        )[0]
        assert synced.max_p2p > unsynced.max_p2p


class TestMisalignmentSweep:
    def test_monotone_reduction(self, generator, chip, options):
        results = sweep_misalignment(
            generator, chip, [0.0, TOD_STEP, 5 * TOD_STEP],
            options=options, assignments_sample=2,
        )
        aligned = max(results[0.0])
        one_step = max(results[TOD_STEP])
        spread = max(results[5 * TOD_STEP])
        assert one_step <= aligned
        assert spread <= aligned

    def test_per_core_vectors(self, generator, chip, options):
        results = sweep_misalignment(
            generator, chip, [0.0], options=options, assignments_sample=1
        )
        assert len(results[0.0]) == 6


class TestDeltaISweep:
    @pytest.fixture(scope="class")
    def points(self, generator, chip):
        return sweep_delta_i_mappings(
            generator, chip,
            options=RunOptions(segments=2, base_samples=1024),
            placements_per_distribution=1,
            workload_filter=lambda dist: dist in
            [(0, 0), (1, 0), (3, 0), (6, 0), (0, 6), (2, 2)],
        )

    def test_filtered_distributions(self, points):
        assert {p.distribution for p in points} == {
            (0, 0), (1, 0), (3, 0), (6, 0), (0, 6), (2, 2)
        }

    def test_delta_pct_accounting(self, points):
        by_dist = {p.distribution: p for p in points}
        assert by_dist[(0, 0)].delta_i_pct == 0.0
        assert by_dist[(6, 0)].delta_i_pct == pytest.approx(100.0)
        # Two mediums equal one max.
        assert by_dist[(0, 6)].delta_i_pct == pytest.approx(50.0, abs=5.0)

    def test_noise_grows_with_delta(self, points):
        by_dist = {p.distribution: p.max_p2p for p in points}
        assert by_dist[(6, 0)] >= by_dist[(3, 0)] >= by_dist[(1, 0)]

    def test_active_core_accounting(self, points):
        by_dist = {p.distribution: p for p in points}
        assert by_dist[(2, 2)].active_cores == 4
        assert by_dist[(0, 0)].active_cores == 0


class TestReportRendering:
    def test_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], ["x", "y"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_table_width_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            render_table(["a"], [[1, 2]])

    def test_series_rendering(self):
        text = render_series("x", ["p", "q"], {"s1": [1.0, 2.0]})
        assert "s1" in text
        assert "1.0" in text and "2.0" in text

    def test_series_length_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            render_series("x", ["p"], {"s1": [1.0, 2.0]})
