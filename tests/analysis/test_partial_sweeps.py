"""Partial (collect-mode) sweeps: failed points are dropped, counted
and traced instead of aborting the whole campaign."""

from __future__ import annotations

import pytest

from repro.analysis.sensitivity import (
    sweep_delta_i_mappings,
    sweep_stimulus_frequency,
)
from repro.engine import ResultCache, SimulationSession
from repro.engine.resilience import RetryPolicy
from repro.errors import ExecutionError
from repro.faults import FaultPlan
from repro.faults.harness import reset_fault_memo
from repro.machine.runner import RunOptions
from repro.obs import EventLog, Telemetry, read_events

#: Permanent failures (transient=False): retry cannot absorb them, so
#: collect-mode must drop the points.
PERMANENT_FAULTS = FaultPlan(seed=5, exception_rate=0.4, transient=False)
NO_RETRY = RetryPolicy(max_retries=0, backoff_base_s=0.0)


def collect_session(chip, telemetry, events=None):
    reset_fault_memo()
    if events is not None:
        telemetry.enable_tracing(events=events)
    return SimulationSession(
        chip,
        RunOptions(segments=2, base_samples=1024),
        cache=ResultCache(telemetry=telemetry),
        executor="serial",
        retry=NO_RETRY,
        on_failure="collect",
        faults=PERMANENT_FAULTS,
        telemetry=telemetry,
    )


class TestCollectModeFrequencySweep:
    def test_failed_points_dropped_counted_and_traced(
        self, generator, chip, tmp_path
    ):
        telemetry = Telemetry()
        frequencies = [1e6, 2e6, 2.6e6, 4e6, 8e6]
        with EventLog(tmp_path / "events.jsonl") as log:
            session = collect_session(chip, telemetry, events=log)
            points = sweep_stimulus_frequency(
                generator, chip, frequencies, synchronize=True,
                n_events=200, session=session,
            )
        dropped = telemetry.counter("engine.points_dropped")
        assert dropped > 0, "fault plan never fired; adjust seed/rate"
        assert len(points) == len(frequencies) - dropped
        # The partial shmoo keeps the frequencies that solved, aligned.
        solved = {p.freq_hz for p in points}
        assert solved < set(frequencies)
        events = read_events(tmp_path / "events.jsonl")
        drops = [e for e in events if e["event"] == "point.dropped"]
        assert len(drops) == dropped
        assert all(e["sweep"] == "fsweep" for e in drops)
        assert all("InjectedFault" in e["error"] for e in drops)
        failures = [e for e in events if e["event"] == "run.failed"]
        assert len(failures) == dropped

    def test_raise_mode_still_aborts(self, generator, chip):
        reset_fault_memo()
        telemetry = Telemetry()
        session = SimulationSession(
            chip,
            RunOptions(segments=2, base_samples=1024),
            cache=ResultCache(telemetry=telemetry),
            executor="serial",
            retry=NO_RETRY,
            on_failure="raise",
            faults=PERMANENT_FAULTS,
            telemetry=telemetry,
        )
        with pytest.raises(ExecutionError):
            sweep_stimulus_frequency(
                generator, chip, [1e6, 2e6, 2.6e6, 4e6, 8e6],
                synchronize=True, n_events=200, session=session,
            )


class TestCollectModeDeltaISweep:
    def test_partial_dataset_renumbers_contiguously(self, generator, chip):
        telemetry = Telemetry()
        session = collect_session(chip, telemetry)
        points = sweep_delta_i_mappings(
            generator, chip, session=session,
            placements_per_distribution=1,
            workload_filter=lambda dist: dist[1] == 0,  # max-only column
        )
        assert telemetry.counter("engine.points_dropped") > 0
        assert points, "every point failed; adjust seed/rate"
        # mapping_ids stay contiguous over the surviving points.
        assert [p.mapping_id for p in points] == list(range(len(points)))
