"""Multi-chip population study tests."""

import pytest

from repro.analysis.population import run_population_study
from repro.errors import ExperimentError
from repro.pdn.impedance import impedance_profile


def peak_impedance_mohm(chip) -> float:
    profile = impedance_profile(
        chip.netlist, "load_core0", "core0", 1e5, 1e8,
        points_per_decade=20, modal=chip.modal,
    )
    return profile.peak()[1] * 1e3


class TestPopulationStudy:
    @pytest.fixture(scope="class")
    def stat(self):
        return run_population_study(
            peak_impedance_mohm, "peak |Z| (mOhm)", n_chips=5
        )

    def test_population_size(self, stat):
        assert stat.values.size == 5

    def test_chips_differ_but_cluster(self, stat):
        # Process variation spreads the peak a little, not wildly.
        assert stat.spread_pct > 0.0
        assert stat.spread_pct < 25.0

    def test_statistics_consistent(self, stat):
        assert stat.minimum <= stat.mean <= stat.maximum
        assert stat.std >= 0.0

    def test_summary_renders(self, stat):
        text = stat.summary()
        assert "peak |Z|" in text
        assert "spread" in text

    def test_deterministic(self):
        a = run_population_study(peak_impedance_mohm, "z", n_chips=3)
        b = run_population_study(peak_impedance_mohm, "z", n_chips=3)
        assert list(a.values) == list(b.values)

    def test_minimum_population_enforced(self):
        with pytest.raises(ExperimentError):
            run_population_study(peak_impedance_mohm, "z", n_chips=1)
