"""Skitter macro model tests."""

import pytest

from repro.errors import MeasurementError
from repro.measure.skitter import SkitterConfig, SkitterMacro


@pytest.fixture()
def macro():
    return SkitterMacro(SkitterConfig(), "core0")


class TestPhysics:
    def test_delay_grows_as_voltage_droops(self, macro):
        nominal = macro.inverter_delay(1.05)
        drooped = macro.inverter_delay(0.95)
        assert drooped > nominal

    def test_delay_at_calibration_point(self, macro):
        assert macro.inverter_delay(1.05) == pytest.approx(6.5e-12)

    def test_taps_quantized(self, macro):
        taps = macro.taps_per_cycle(1.05)
        assert isinstance(taps, int)
        # 181.8 ps cycle over 6.5 ps inverters.
        assert taps == 27

    def test_sensitivity_scales_exponent(self):
        hot = SkitterMacro(SkitterConfig(), "x", sensitivity=1.2)
        cold = SkitterMacro(SkitterConfig(), "x", sensitivity=0.8)
        assert hot.inverter_delay(0.95) > cold.inverter_delay(0.95)

    def test_nonpositive_voltage_rejected(self, macro):
        with pytest.raises(MeasurementError):
            macro.inverter_delay(0.0)


class TestReadout:
    def test_no_observation_raises(self, macro):
        with pytest.raises(MeasurementError):
            macro.read()

    def test_quiet_supply_reads_zero(self, macro):
        macro.observe(1.05, 1.05)
        assert macro.read().p2p_pct == 0.0

    def test_p2p_monotone_in_droop(self, macro):
        macro.observe(1.00, 1.05)
        small = macro.read().p2p_pct
        macro.reset()
        macro.observe(0.92, 1.05)
        large = macro.read().p2p_pct
        assert large > small

    def test_readings_are_quantized(self, macro):
        macro.observe(0.95, 1.06)
        reading = macro.read()
        step = 100.0 / reading.taps_nominal
        assert reading.p2p_pct == pytest.approx(
            round(reading.p2p_pct / step) * step
        )

    def test_convexity_at_large_droops(self, macro):
        """The documented loss of linearity: equal extra droop adds more
        %p2p at deep droops than at shallow ones."""
        macro.observe(1.05 - 0.04, 1.05)
        first = macro.read().p2p_pct
        macro.reset()
        macro.observe(1.05 - 0.08, 1.05)
        second = macro.read().p2p_pct
        macro.reset()
        macro.observe(1.05 - 0.12, 1.05)
        third = macro.read().p2p_pct
        assert (third - second) >= (second - first)

    def test_ssn_term_deepens_reading(self, macro):
        macro.observe(1.00, 1.05, coherent_delta_i=0.0)
        plain = macro.read().p2p_pct
        macro.reset()
        macro.observe(1.00, 1.05, coherent_delta_i=60.0)
        with_ssn = macro.read().p2p_pct
        assert with_ssn > plain


class TestStickyMode:
    def test_extremes_accumulate(self, macro):
        macro.observe(1.02, 1.05)
        macro.observe(0.98, 1.06)
        macro.observe(1.01, 1.04)
        first = macro.read()
        macro.reset()
        macro.observe(0.98, 1.06)
        assert macro.read().p2p_pct == first.p2p_pct

    def test_reset_clears(self, macro):
        macro.observe(0.9, 1.05)
        macro.reset()
        with pytest.raises(MeasurementError):
            macro.read()

    def test_inverted_window_rejected(self, macro):
        with pytest.raises(MeasurementError):
            macro.observe(1.05, 1.00)

    def test_negative_coherence_rejected(self, macro):
        with pytest.raises(MeasurementError):
            macro.observe(1.0, 1.05, coherent_delta_i=-1.0)


class TestConfigGuards:
    def test_short_line_rejected(self):
        with pytest.raises(MeasurementError):
            SkitterConfig(taps=4)

    def test_bad_exponent_rejected(self):
        with pytest.raises(MeasurementError):
            SkitterConfig(voltage_exponent=0.0)

    def test_bad_sensitivity_rejected(self):
        with pytest.raises(MeasurementError):
            SkitterMacro(SkitterConfig(), "x", sensitivity=0.0)
