"""Vmin protocol, R-Unit and oscilloscope tests."""

import numpy as np
import pytest

from repro.errors import ConfigError, MeasurementError
from repro.machine.runner import RunOptions
from repro.machine.workload import CurrentProgram, SyncSpec
from repro.measure.oscilloscope import TraceCapture, capture_trace
from repro.measure.runit import RUnit, RUnitConfig
from repro.measure.vmin import run_vmin_experiment


def didt(sync=True, i_high=32.0):
    return CurrentProgram(
        name="v",
        i_low=14.0,
        i_high=i_high,
        freq_hz=2.6e6,
        rise_time=11e-9,
        sync=SyncSpec() if sync else None,
    )


@pytest.fixture(scope="module")
def options():
    return RunOptions(segments=2, base_samples=1024)


class TestRUnit:
    def test_threshold(self):
        runit = RUnit(RUnitConfig(v_fail_frac=0.9), vnom=1.0)
        assert runit.v_fail == pytest.approx(0.9)
        assert not runit.check(0.95)
        assert runit.check(0.85)
        assert runit.error_count == 1
        runit.reset()
        assert runit.error_count == 0

    def test_config_guards(self):
        with pytest.raises(ConfigError):
            RUnitConfig(v_fail_frac=1.2)
        with pytest.raises(ConfigError):
            RUnit(RUnitConfig(), vnom=0.0)


class TestVminExperiment:
    def test_protocol_finds_margin(self, chip, options):
        result = run_vmin_experiment(chip, [didt()] * 6, options=options)
        assert 0.0 <= result.margin_frac < 0.2
        assert result.fail_bias < 1.0
        # Margin is a whole number of 0.5 % steps.
        steps = result.margin_frac / 0.005
        assert steps == pytest.approx(round(steps))

    def test_sync_margin_below_unsync(self, chip, options):
        synced = run_vmin_experiment(chip, [didt(sync=True)] * 6, options=options)
        unsynced = run_vmin_experiment(chip, [didt(sync=False)] * 6, options=options)
        assert synced.margin_frac < unsynced.margin_frac

    def test_dwell_time_tracked(self, chip, options):
        result = run_vmin_experiment(chip, [didt()] * 6, options=options)
        assert result.simulated_minutes == pytest.approx(
            2.0 * (result.steps_survived + 1)
        )

    def test_unreachable_threshold_raises(self, chip, options):
        quiet = CurrentProgram("q", i_low=1.0, i_high=1.0)
        with pytest.raises(MeasurementError, match="no failure"):
            run_vmin_experiment(
                chip,
                [quiet] * 6,
                runit_config=RUnitConfig(v_fail_frac=0.51),
                options=options,
                max_steps=5,
            )

    def test_unreachable_threshold_error_names_the_experiment(
        self, chip, options
    ):
        # Near-margin debugging of a multi-chip, multi-workload
        # campaign: the error alone must identify which experiment
        # never failed and where the search ended up.
        quiet = CurrentProgram("q", i_low=1.0, i_high=1.0)
        with pytest.raises(MeasurementError) as excinfo:
            run_vmin_experiment(
                chip,
                [quiet] * 3 + [None] * 3,
                runit_config=RUnitConfig(v_fail_frac=0.51),
                options=options,
                max_steps=5,
            )
        message = str(excinfo.value)
        assert f"chip {chip.chip_id}" in message
        assert "'q'" in message  # the workload tag
        assert "5 bias steps" in message
        assert "final bias" in message
        assert "R-Unit threshold" in message

    def test_idle_mapping_is_named_in_the_error(self, chip, options):
        idle = CurrentProgram("i", i_low=5.0, i_high=5.0)
        with pytest.raises(MeasurementError) as excinfo:
            run_vmin_experiment(
                chip,
                [idle, None, None, None, None, None],
                runit_config=RUnitConfig(v_fail_frac=0.51),
                options=options,
                max_steps=3,
            )
        assert "'i'" in str(excinfo.value)


class TestOscilloscope:
    @pytest.fixture(scope="class")
    def trace(self, chip):
        return capture_trace(
            chip,
            [didt()] * 6,
            node="core0",
            options=RunOptions(segments=1, base_samples=1024),
        )

    def test_uniform_resampling(self, trace):
        dt = np.diff(trace.times)
        assert np.allclose(dt, dt[0])

    def test_waveform_has_noise(self, trace):
        assert trace.peak_to_peak > 0.02  # tens of mV on the core rail

    def test_crop_window(self, trace):
        period = 1 / 2.6e6
        single = trace.crop(2 * period, 3 * period)
        assert single.times[0] >= 2 * period
        assert single.times[-1] <= 3 * period
        assert single.peak_to_peak <= trace.peak_to_peak

    def test_bad_crop_rejected(self, trace):
        with pytest.raises(MeasurementError):
            trace.crop(1.0, 0.5)
        with pytest.raises(MeasurementError):
            trace.crop(5.0, 6.0)  # beyond the capture

    def test_unknown_node_rejected(self, chip):
        with pytest.raises(MeasurementError):
            capture_trace(
                chip, [didt()] * 6, node="not-a-node",
                options=RunOptions(segments=1, base_samples=1024),
            )
