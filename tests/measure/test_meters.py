"""Power meter and performance counter tests."""

import pytest

from repro.errors import MeasurementError
from repro.mbench.loops import build_epi_loop, build_sequence_loop
from repro.measure.counters import read_counters
from repro.measure.powermeter import PowerMeter


class TestPowerMeter:
    def test_reading_near_model_truth(self, target):
        meter = PowerMeter(target, noise_sigma=0.002, temperature_drift=0.0)
        program = build_sequence_loop(target.isa, (target.isa["CIB"],), unroll=24)
        truth = target.power(program).watts
        reading = meter.measure(program)
        assert reading == pytest.approx(truth, rel=0.01)

    def test_milliwatt_quantization(self, target):
        meter = PowerMeter(target)
        program = build_sequence_loop(target.isa, (target.isa["CIB"],), unroll=24)
        reading = meter.measure(program)
        assert reading == round(reading, 3)

    def test_repeat_readings_differ(self, target):
        meter = PowerMeter(target, noise_sigma=0.01, temperature_drift=0.0)
        program = build_sequence_loop(target.isa, (target.isa["CIB"],), unroll=24)
        a = meter.measure(program, reading_tag=0)
        b = meter.measure(program, reading_tag=1)
        assert a != b

    def test_average_tightens_noise(self, target):
        meter = PowerMeter(target, noise_sigma=0.01, temperature_drift=0.0)
        program = build_sequence_loop(target.isa, (target.isa["CIB"],), unroll=24)
        truth = target.power(program).watts
        averaged = meter.measure_average(program, repeats=9)
        assert averaged == pytest.approx(truth, rel=0.01)

    def test_dwell_time_accounting(self, target):
        meter = PowerMeter(target, dwell_s=5.0)
        program = build_sequence_loop(target.isa, (target.isa["CIB"],), unroll=4)
        meter.measure(program)
        meter.measure(program, reading_tag=1)
        assert meter.simulated_seconds == 10.0

    def test_guards(self, target):
        with pytest.raises(MeasurementError):
            PowerMeter(target, noise_sigma=-0.1)
        with pytest.raises(MeasurementError):
            PowerMeter(target, dwell_s=0.0)
        meter = PowerMeter(target)
        program = build_sequence_loop(target.isa, (target.isa["CIB"],), unroll=4)
        with pytest.raises(MeasurementError):
            meter.measure_average(program, repeats=0)


class TestCounters:
    def test_ipc_matches_model(self, target):
        program = build_epi_loop(target.isa, target.isa["CIB"], repetitions=60)
        reading = read_counters(program, target, jitter=0.0)
        profile = target.profile(program)
        assert reading.ipc == pytest.approx(profile.ipc, rel=0.01)

    def test_counters_scale_with_duration(self, target):
        program = build_epi_loop(target.isa, target.isa["CIB"], repetitions=60)
        short = read_counters(program, target, duration_s=1.0, jitter=0.0)
        long = read_counters(program, target, duration_s=2.0, jitter=0.0)
        assert long.instructions == pytest.approx(2 * short.instructions, rel=0.01)

    def test_group_size_reported(self, target):
        program = build_epi_loop(target.isa, target.isa["SRNM"], repetitions=10)
        reading = read_counters(program, target)
        assert reading.group_size_avg == pytest.approx(1.0)

    def test_bad_duration_rejected(self, target):
        program = build_epi_loop(target.isa, target.isa["CIB"], repetitions=10)
        with pytest.raises(MeasurementError):
            read_counters(program, target, duration_s=0.0)
