"""Top-level package API surface tests."""

import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_symbols(self):
        # The README quickstart's imports must exist at top level.
        assert callable(repro.StressmarkGenerator)
        assert callable(repro.reference_chip)
        assert callable(repro.ChipRunner)
        assert callable(repro.default_target)

    def test_error_hierarchy(self):
        from repro.errors import (
            ConfigError,
            ExperimentError,
            GenerationError,
            IsaError,
            MeasurementError,
            NetlistError,
            ReproError,
            SolverError,
            UarchError,
        )

        for exc in (
            ConfigError, ExperimentError, GenerationError, IsaError,
            MeasurementError, NetlistError, SolverError, UarchError,
        ):
            assert issubclass(exc, ReproError)
            assert issubclass(exc, Exception)

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.core
        import repro.experiments
        import repro.isa
        import repro.machine
        import repro.mbench
        import repro.measure
        import repro.mitigation
        import repro.pdn
        import repro.uarch
        import repro.workloads

    def test_subpackage_alls_resolve(self):
        import repro.analysis as analysis
        import repro.mitigation as mitigation
        import repro.pdn as pdn
        import repro.workloads as workloads

        for module in (analysis, mitigation, pdn, workloads):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestReadmeQuickstartPath:
    """The README's code path must work verbatim (light settings)."""

    def test_quickstart_flow(self, generator, chip, light_options):
        from repro import ChipRunner

        mark = generator.max_didt(freq_hz=2.6e6, synchronize=True)
        assert "didt" in mark.assembly()
        assert mark.delta_i > 0
        result = ChipRunner(chip).run(
            [mark.current_program()] * 6, light_options
        )
        assert len(result.p2p_by_core) == 6
        assert result.max_p2p > 30.0
