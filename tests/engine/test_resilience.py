"""Resilience primitive tests: retry policy, guarded execution,
timeouts, structured failures."""

import pickle
import time

import pytest

from repro.engine.resilience import (
    GuardedOutcome,
    RetryPolicy,
    RunFailure,
    call_with_timeout,
    guarded_call,
)
from repro.errors import ConfigError, RunTimeoutError


class _Flaky:
    """Fails the first *failures* calls, then succeeds."""

    def __init__(self, failures, error=ValueError("transient")):
        self.failures = failures
        self.error = error
        self.calls = 0

    def __call__(self, x):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return x * 10


class TestRetryPolicy:
    def test_defaults_are_sane(self):
        policy = RetryPolicy()
        assert policy.max_retries == 2
        assert policy.run_timeout_s is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_base_s": -0.1},
            {"backoff_factor": 0.5},
            {"run_timeout_s": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)

    def test_backoff_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=0.3
        )
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.2)
        assert policy.backoff_s(3) == pytest.approx(0.3)  # capped
        assert policy.backoff_s(9) == pytest.approx(0.3)
        assert policy.backoff_s(0) == 0.0

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_RETRIES", raising=False)
        monkeypatch.delenv("REPRO_RUN_TIMEOUT", raising=False)
        assert RetryPolicy.from_env() == RetryPolicy()
        monkeypatch.setenv("REPRO_MAX_RETRIES", " 5 ")
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "2.5")
        policy = RetryPolicy.from_env()
        assert policy.max_retries == 5
        assert policy.run_timeout_s == 2.5

    @pytest.mark.parametrize(
        "name,value",
        [("REPRO_MAX_RETRIES", "two"), ("REPRO_RUN_TIMEOUT", "fast")],
    )
    def test_bad_env_rejected(self, monkeypatch, name, value):
        monkeypatch.setenv(name, value)
        with pytest.raises(ConfigError):
            RetryPolicy.from_env()


class TestGuardedCall:
    def test_success_first_try(self):
        outcome = guarded_call(lambda x: x + 1, 1)
        assert outcome.ok
        assert outcome.value == 2
        assert outcome.attempts == 1

    def test_transient_failure_is_retried(self):
        fn = _Flaky(failures=2)
        outcome = guarded_call(
            fn, 4, RetryPolicy(max_retries=2, backoff_base_s=0.0)
        )
        assert outcome.ok
        assert outcome.value == 40
        assert outcome.attempts == 3

    def test_exhausted_budget_becomes_run_failure(self):
        fn = _Flaky(failures=10)
        outcome = guarded_call(
            fn,
            4,
            RetryPolicy(max_retries=1, backoff_base_s=0.0),
            label="point-4",
            fingerprint="cafe",
        )
        assert not outcome.ok
        assert outcome.attempts == 2
        failure = outcome.failure
        assert failure.label == "point-4"
        assert failure.fingerprint == "cafe"
        assert failure.error_type == "ValueError"
        assert "transient" in failure.message
        assert "ValueError" in failure.traceback
        assert "point-4" in failure.describe()

    def test_backoff_schedule_drives_the_sleeps(self):
        slept = []
        guarded_call(
            _Flaky(failures=10),
            1,
            RetryPolicy(
                max_retries=3, backoff_base_s=0.1, backoff_factor=2.0,
                backoff_max_s=10.0,
            ),
            sleep=slept.append,
        )
        assert slept == pytest.approx([0.1, 0.2, 0.4])

    def test_keyboard_interrupt_propagates(self):
        def interrupt(_):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            guarded_call(interrupt, 1, RetryPolicy(max_retries=5))

    def test_timeout_counts_and_retries(self):
        calls = {"n": 0}

        def slow_once(x):
            calls["n"] += 1
            if calls["n"] == 1:
                time.sleep(0.5)
            return x

        outcome = guarded_call(
            slow_once,
            3,
            RetryPolicy(
                max_retries=1, backoff_base_s=0.0, run_timeout_s=0.05
            ),
        )
        assert outcome.ok
        assert outcome.value == 3
        assert outcome.timeouts == 1
        assert outcome.attempts == 2


class TestCallWithTimeout:
    def test_no_budget_runs_inline(self):
        assert call_with_timeout(lambda x: x * 2, 3, None) == 6

    def test_fast_call_fits_the_budget(self):
        assert call_with_timeout(lambda x: x * 2, 3, 5.0) == 6

    def test_slow_call_raises(self):
        with pytest.raises(RunTimeoutError, match="wall-clock"):
            call_with_timeout(lambda _: time.sleep(1.0), None, 0.05)

    def test_worker_exception_propagates(self):
        def boom(_):
            raise RuntimeError("inner")

        with pytest.raises(RuntimeError, match="inner"):
            call_with_timeout(boom, None, 1.0)


class TestRunFailure:
    def test_is_picklable_with_carried_exception(self):
        failure = RunFailure.from_exception(
            ValueError("bad point"), label="p1", attempts=3
        )
        clone = pickle.loads(pickle.dumps(failure))
        assert clone.message == "bad point"
        assert clone.attempts == 3
        assert isinstance(clone.exception, ValueError)

    def test_unpicklable_exception_is_dropped_not_fatal(self):
        error = ValueError("holds a closure")
        error.payload = lambda: None  # unpicklable attribute
        failure = RunFailure.from_exception(error)
        assert failure.exception is None
        assert failure.error_type == "ValueError"
        pickle.loads(pickle.dumps(failure))  # still crosses processes

    def test_outcome_ok_property(self):
        assert GuardedOutcome(value=1).ok
        assert not GuardedOutcome(
            failure=RunFailure.from_exception(ValueError())
        ).ok
