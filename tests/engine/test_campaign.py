"""Checkpoint/resume tests: campaign manifest, interrupted sessions,
and the CLI ``run --resume`` flow.

The acceptance property: killing a multi-point campaign midway and
re-invoking with resume recomputes *only* the unfinished points — at
the run level via the disk cache's incremental checkpoints, and at the
experiment level via the campaign manifest.
"""

import json

import pytest

import repro.cli as cli
from repro.engine import CampaignManifest, ResultCache, SimulationSession
from repro.engine.campaign import MANIFEST_NAME
from repro.errors import ExperimentError
from repro.faults import FaultPlan, reset_fault_memo
from repro.machine.runner import RunOptions
from repro.obs import Telemetry

from .conftest import didt


class TestManifest:
    def test_roundtrip(self, tmp_path):
        manifest = CampaignManifest(tmp_path)
        assert manifest.path == tmp_path / MANIFEST_NAME
        assert manifest.completed == set()
        manifest.mark_started("fig7a")
        assert not manifest.is_complete("fig7a")
        manifest.mark_complete("fig7a", meta={"runs": 3})
        manifest.mark_started("fig9")
        manifest.mark_failed("fig10", "solver blew up")
        assert manifest.completed == {"fig7a"}
        payload = manifest.load()
        assert payload["points"]["fig7a"]["meta"] == {"runs": 3}
        assert payload["points"]["fig10"]["status"] == "failed"
        assert payload["points"]["fig10"]["reason"] == "solver blew up"

    def test_file_is_always_valid_json(self, tmp_path):
        manifest = CampaignManifest(tmp_path / "m.json")
        manifest.mark_complete("a")
        manifest.mark_complete("b")
        payload = json.loads((tmp_path / "m.json").read_text())
        assert set(payload["points"]) == {"a", "b"}

    def test_torn_manifest_never_wedges_a_resume(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text('{"version": 1, "poi')  # torn write
        manifest = CampaignManifest(path)
        assert manifest.completed == set()
        manifest.mark_complete("a")  # recovers by republishing
        assert CampaignManifest(path).completed == {"a"}

    def test_non_dict_payload_is_ignored(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("[1, 2, 3]")
        assert CampaignManifest(path).completed == set()


@pytest.fixture(autouse=True)
def _fresh_memo():
    reset_fault_memo()
    yield
    reset_fault_memo()


class TestInterruptedSession:
    def test_resume_recomputes_only_unfinished_runs(self, chip, tmp_path):
        """Kill a 5-point sweep after 2 checkpointed runs; the resumed
        sweep must replay those 2 from disk and execute only the other
        3 (the run-level half of the resume acceptance criterion)."""
        options = RunOptions(segments=2, base_samples=1024)
        mappings = [
            [didt(i_high=20.0 + i)] + [None] * 5 for i in range(5)
        ]
        tags = [f"p{i}" for i in range(5)]

        first_telemetry = Telemetry()
        interrupted = SimulationSession(
            chip,
            options,
            cache=ResultCache(
                cache_dir=tmp_path, telemetry=first_telemetry
            ),
            executor="serial",
            faults=FaultPlan(seed=5, abort_after=3),
            telemetry=first_telemetry,
        )
        with pytest.raises(KeyboardInterrupt):
            interrupted.run_many(mappings, tags)
        # Runs 1 and 2 were flushed as they completed; run 3 died
        # mid-flight (after compute, before checkpoint) and is lost.
        assert first_telemetry.counter("engine.cache.disk_writes") == 2

        reset_fault_memo()
        resumed_telemetry = Telemetry()
        resumed = SimulationSession(
            chip,
            options,
            cache=ResultCache(
                cache_dir=tmp_path, telemetry=resumed_telemetry
            ),
            executor="serial",
            faults=None,
            telemetry=resumed_telemetry,
        )
        results = resumed.run_many(mappings, tags)
        assert len(results) == 5
        assert all(result is not None for result in results)
        assert resumed_telemetry.counter("engine.cache.disk_hits") == 2
        assert resumed_telemetry.counter("engine.runs_executed") == 3


class TestCliResume:
    def test_resume_without_a_location_is_an_error(self, capsys):
        assert cli.main(["run", "fig7b", "--resume"]) == 2
        assert "--resume needs" in capsys.readouterr().err

    def test_resume_skips_finished_experiments(self, tmp_path, capsys):
        out = str(tmp_path / "artifacts")
        assert cli.main(["--quick", "run", "fig7b", "--output", out]) == 0
        manifest = CampaignManifest(tmp_path / "artifacts")
        assert manifest.completed == {"fig7b"}
        capsys.readouterr()

        assert (
            cli.main(
                ["--quick", "run", "fig7b", "--resume", "--output", out]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "resume: skipping 1 finished experiment(s): fig7b" in (
            captured.out
        )
        # Nothing re-ran: the skipped campaign printed no result body.
        assert "resonant bands" not in captured.out

    def test_failed_point_is_recorded_and_telemetry_flushed(
        self, tmp_path, monkeypatch, capsys
    ):
        def failing_driver(experiment_id):
            def driver(context):
                raise ExperimentError("injected driver failure")

            return driver

        monkeypatch.setattr(cli, "get_experiment", failing_driver)
        out = tmp_path / "artifacts"
        status = cli.main(["--quick", "run", "fig7b", "--output", str(out)])
        captured = capsys.readouterr()
        assert status == 1
        assert "injected driver failure" in captured.err
        # Satellite guarantee: a campaign that fails partway still
        # leaves a telemetry snapshot in the output directory.
        assert (out / "telemetry.json").exists()
        payload = CampaignManifest(out).load()
        assert payload["points"]["fig7b"]["status"] == "failed"
        assert CampaignManifest(out).completed == set()
