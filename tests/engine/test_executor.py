"""Executor backend tests: selection, chunking, order preservation."""

import pytest

from repro.engine.executor import (
    ProcessExecutor,
    SerialExecutor,
    chunked,
    make_executor,
    resolve_jobs,
)
from repro.errors import ConfigError


def square(x):
    return x * x


class TestChunking:
    def test_even_split(self):
        assert chunked([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_uneven_split_front_loads(self):
        assert chunked([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]

    def test_more_chunks_than_items(self):
        assert chunked([1, 2], 5) == [[1], [2]]

    def test_empty_input(self):
        assert chunked([], 3) == []

    def test_guard(self):
        with pytest.raises(ConfigError):
            chunked([1], 0)


class TestJobResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5

    def test_machine_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() >= 1

    @pytest.mark.parametrize("bad", ["0", "-2", "two"])
    def test_bad_env_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_JOBS", bad)
        with pytest.raises(ConfigError):
            resolve_jobs()

    def test_bad_argument_rejected(self):
        with pytest.raises(ConfigError):
            resolve_jobs(0)


class TestSelection:
    def test_serial_is_the_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert isinstance(make_executor(), SerialExecutor)

    def test_env_selects_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        monkeypatch.setenv("REPRO_JOBS", "2")
        executor = make_executor()
        assert isinstance(executor, ProcessExecutor)
        assert executor.jobs == 2

    def test_explicit_name_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        assert isinstance(make_executor("serial"), SerialExecutor)

    def test_unknown_names_rejected(self, monkeypatch):
        with pytest.raises(ConfigError):
            make_executor("threads")
        monkeypatch.setenv("REPRO_EXECUTOR", "gpu")
        with pytest.raises(ConfigError):
            make_executor()


class TestMapping:
    def test_serial_map_preserves_order(self):
        assert SerialExecutor().map(square, [3, 1, 2]) == [9, 1, 4]

    def test_process_map_matches_serial(self):
        executor = ProcessExecutor(jobs=2)
        items = list(range(11))
        assert executor.map(square, items) == [square(i) for i in items]

    def test_process_map_empty(self):
        assert ProcessExecutor(jobs=2).map(square, []) == []
