"""Executor backend tests: selection, chunking, order preservation,
guarded mapping and pool degradation."""

import os

import pytest

from repro.engine.executor import (
    ProcessExecutor,
    SerialExecutor,
    chunked,
    default_executor_name,
    make_executor,
    resolve_jobs,
)
from repro.engine.resilience import RetryPolicy
from repro.errors import ConfigError
from repro.obs import get_telemetry


def square(x):
    return x * x


def fail_on_two(x):
    if x == 2:
        raise ValueError("point 2 is cursed")
    return x * x


class _CrashInWorker:
    """Kills the hosting process (``os._exit``) when executed outside
    the process it was constructed in — a real dead worker, without
    ever endangering the test runner itself."""

    def __init__(self):
        self.main_pid = os.getpid()

    def __call__(self, x):
        if os.getpid() != self.main_pid:
            os._exit(3)
        return x * x


class _ExplodesOnUnpickle:
    """A task that fails during worker-side setup: unpickling it (the
    first thing a pool worker does with a submitted chunk) raises."""

    def __getstate__(self):
        return {}

    def __setstate__(self, state):
        raise RuntimeError("worker setup failed")

    def __call__(self, x):
        return x + 1


class TestChunking:
    def test_even_split(self):
        assert chunked([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_uneven_split_front_loads(self):
        assert chunked([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]

    def test_more_chunks_than_items(self):
        assert chunked([1, 2], 5) == [[1], [2]]

    def test_empty_input(self):
        assert chunked([], 3) == []

    def test_guard(self):
        with pytest.raises(ConfigError):
            chunked([1], 0)


class TestJobResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5

    def test_machine_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() >= 1

    @pytest.mark.parametrize("bad", ["0", "-2", "two"])
    def test_bad_env_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_JOBS", bad)
        with pytest.raises(ConfigError):
            resolve_jobs()

    def test_bad_argument_rejected(self):
        with pytest.raises(ConfigError):
            resolve_jobs(0)


class TestSelection:
    def test_serial_is_the_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert isinstance(make_executor(), SerialExecutor)

    def test_env_selects_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        monkeypatch.setenv("REPRO_JOBS", "2")
        executor = make_executor()
        assert isinstance(executor, ProcessExecutor)
        assert executor.jobs == 2

    def test_explicit_name_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        assert isinstance(make_executor("serial"), SerialExecutor)

    def test_unknown_names_rejected(self, monkeypatch):
        with pytest.raises(ConfigError):
            make_executor("threads")
        monkeypatch.setenv("REPRO_EXECUTOR", "gpu")
        with pytest.raises(ConfigError):
            make_executor()


class TestEnvEdgeCases:
    def test_whitespace_jobs_env_means_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "   ")
        assert resolve_jobs() == (os.cpu_count() or 1)

    def test_padded_jobs_env_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", " 4 ")
        assert resolve_jobs() == 4

    def test_whitespace_executor_env_means_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "   ")
        assert default_executor_name() == "serial"

    def test_executor_env_is_case_insensitive(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", " Process ")
        assert default_executor_name() == "process"

    def test_invalid_executor_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "gpu")
        with pytest.raises(ConfigError, match="REPRO_EXECUTOR"):
            default_executor_name()


class TestMapping:
    def test_serial_map_preserves_order(self):
        assert SerialExecutor().map(square, [3, 1, 2]) == [9, 1, 4]

    def test_process_map_matches_serial(self):
        executor = ProcessExecutor(jobs=2)
        items = list(range(11))
        assert executor.map(square, items) == [square(i) for i in items]

    def test_process_map_empty(self):
        assert ProcessExecutor(jobs=2).map(square, []) == []


NO_RETRY = RetryPolicy(max_retries=0, backoff_base_s=0.0)


class TestGuardedMapping:
    def test_serial_empty(self):
        assert SerialExecutor().map_guarded(square, [], NO_RETRY) == []

    def test_process_empty(self):
        executor = ProcessExecutor(jobs=2)
        assert executor.map_guarded(square, [], NO_RETRY) == []

    def test_one_bad_item_does_not_kill_the_batch(self):
        outcomes = SerialExecutor().map_guarded(
            fail_on_two, [1, 2, 3], NO_RETRY, labels=["a", "b", "c"]
        )
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[0].value == 1
        assert outcomes[2].value == 9
        failure = outcomes[1].failure
        assert failure.label == "b"
        assert failure.error_type == "ValueError"

    def test_process_matches_serial(self):
        items = list(range(9))
        serial = SerialExecutor().map_guarded(fail_on_two, items, NO_RETRY)
        pooled = ProcessExecutor(jobs=2).map_guarded(
            fail_on_two, items, NO_RETRY
        )
        assert [o.value for o in pooled] == [o.value for o in serial]
        assert [o.ok for o in pooled] == [o.ok for o in serial]

    def test_on_result_fires_per_item_in_order(self):
        seen = []
        SerialExecutor().map_guarded(
            square,
            [5, 6],
            NO_RETRY,
            on_result=lambda index, outcome: seen.append(
                (index, outcome.value)
            ),
        )
        assert seen == [(0, 25), (1, 36)]

    def test_metadata_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            SerialExecutor().map_guarded(
                square, [1, 2], NO_RETRY, labels=["only-one"]
            )


class TestPoolDegradation:
    def test_map_survives_dead_workers(self):
        # Every worker dies on first use; the parent must notice the
        # broken pool and finish the batch serially itself.
        telemetry = get_telemetry()
        before = telemetry.counter("engine.pool.degraded_to_serial")
        results = ProcessExecutor(jobs=2).map(
            _CrashInWorker(), list(range(6))
        )
        assert results == [i * i for i in range(6)]
        assert telemetry.counter("engine.pool.degraded_to_serial") > before

    def test_map_guarded_survives_dead_workers(self):
        telemetry = get_telemetry()
        before = telemetry.counter("engine.pool.chunk_failures")
        outcomes = ProcessExecutor(jobs=2).map_guarded(
            _CrashInWorker(), list(range(6)), NO_RETRY
        )
        assert [o.value for o in outcomes] == [i * i for i in range(6)]
        assert all(o.ok for o in outcomes)
        assert telemetry.counter("engine.pool.chunk_failures") > before

    def test_map_guarded_survives_worker_setup_failure(self):
        # The task cannot even be unpickled worker-side; degradation
        # re-runs it in the parent, where no pickling is involved.
        outcomes = ProcessExecutor(jobs=2).map_guarded(
            _ExplodesOnUnpickle(), [1, 2, 3, 4], NO_RETRY
        )
        assert [o.value for o in outcomes] == [2, 3, 4, 5]
        assert all(o.ok for o in outcomes)

    def test_plain_run_exceptions_still_propagate(self):
        # Degradation is for infrastructure faults only: an exception
        # raised by the mapped function itself must surface unchanged.
        with pytest.raises(ValueError, match="cursed"):
            ProcessExecutor(jobs=2).map(fail_on_two, list(range(6)))
