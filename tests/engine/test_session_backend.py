"""The session backend layer: selection, fallback, batched dispatch,
and — above all — cache-key neutrality (the backend must never change a
run's fingerprint, so either path reads and writes the same entries).
"""

from __future__ import annotations

import pytest

from repro.engine import (
    BACKENDS,
    ResultCache,
    SimulationSession,
    resolve_backend_name,
)
from repro.errors import ConfigError, SolverError
from repro.machine.chip import Chip
from repro.machine.runner import RunOptions
from repro.pdn.kernels import KERNEL_TOLERANCE_V

from .conftest import didt


def make_session(chip, telemetry, cache=None, **kwargs):
    return SimulationSession(
        chip,
        RunOptions(segments=2, base_samples=1024),
        cache=cache if cache is not None else ResultCache(telemetry=telemetry),
        executor="serial",
        telemetry=telemetry,
        **kwargs,
    )


def break_kernel_compile(monkeypatch, chip):
    """Force ``chip.compiled_kernel`` to raise SolverError for the
    duration of one test (clearing the memoized instance value and
    shadowing the class descriptor)."""

    def boom(self):
        raise SolverError("injected kernel compile failure")

    monkeypatch.delitem(chip.__dict__, "compiled_kernel", raising=False)
    monkeypatch.setattr(Chip, "compiled_kernel", property(boom))


class TestSelection:
    def test_invalid_name_rejected(self, chip, telemetry):
        with pytest.raises(ConfigError, match="backend"):
            resolve_backend_name("vectorized")
        with pytest.raises(ConfigError, match="backend"):
            make_session(chip, telemetry, backend="turbo")

    @pytest.mark.parametrize("name", BACKENDS)
    def test_explicit_names_accepted(self, chip, telemetry, name):
        assert make_session(chip, telemetry, backend=name).backend == name

    def test_env_default(self, chip, telemetry, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "batched")
        assert resolve_backend_name(None) == "batched"
        assert make_session(chip, telemetry).backend == "batched"
        # An explicit argument wins over the environment.
        assert resolve_backend_name("reference") == "reference"
        monkeypatch.delenv("REPRO_BACKEND")
        assert resolve_backend_name(None) == "auto"

    def test_derive_carries_backend(self, chip, telemetry):
        session = make_session(chip, telemetry, backend="batched")
        sibling = session.derive(segments=4)
        assert sibling.backend == "batched"
        assert sibling.options.segments == 4
        assert session.options.segments == 2


class TestCacheNeutrality:
    def test_fingerprint_ignores_backend(self, chip, telemetry):
        mapping = [didt()] * 6
        fingerprints = {
            make_session(chip, telemetry, backend=name).fingerprint(mapping)
            for name in BACKENDS
        }
        assert len(fingerprints) == 1

    def test_backends_share_cache_entries(self, chip, telemetry):
        """A run executed under one backend replays from the cache
        under the other — in both directions."""
        cache = ResultCache(telemetry=telemetry)
        batched = make_session(chip, telemetry, cache=cache, backend="batched")
        reference = make_session(
            chip, telemetry, cache=cache, backend="reference"
        )
        warm = [didt()] * 6
        batched.run(warm, "shared")
        executed = telemetry.counter("engine.runs_executed")
        replay = reference.run(warm, "shared")
        assert telemetry.counter("engine.runs_executed") == executed
        assert replay.p2p_by_core == batched.run(warm, "shared").p2p_by_core

        cold = [didt(i_high=30.0)] * 6
        reference.run(cold, "shared2")
        executed = telemetry.counter("engine.runs_executed")
        batched.run(cold, "shared2")
        assert telemetry.counter("engine.runs_executed") == executed


class TestFallback:
    def test_auto_falls_back_to_reference(self, chip, telemetry, monkeypatch):
        break_kernel_compile(monkeypatch, chip)
        session = make_session(chip, telemetry, backend="auto")
        result = session.run([didt()] * 6)
        assert result.max_p2p > 0
        assert session._resolve_backend() == "reference"
        assert telemetry.counter("engine.kernel.fallbacks") == 1

    def test_explicit_batched_propagates_error(
        self, chip, telemetry, monkeypatch
    ):
        break_kernel_compile(monkeypatch, chip)
        session = make_session(chip, telemetry, backend="batched")
        with pytest.raises(SolverError, match="injected"):
            session.run([didt()] * 6)
        assert telemetry.counter("engine.kernel.fallbacks") == 0


class TestBatchedDispatch:
    MAPPINGS = [
        [didt()] * 6,
        [didt(i_high=28.0)] * 6,
        [didt(sync=False)] * 6,
    ]

    def test_run_many_matches_reference(self, chip, telemetry):
        fast = make_session(chip, telemetry, backend="batched").run_many(
            self.MAPPINGS
        )
        slow = make_session(chip, telemetry, backend="reference").run_many(
            self.MAPPINGS
        )
        assert telemetry.histogram("engine.run.batched.seconds") is not None
        assert telemetry.histogram("engine.run.reference.seconds") is not None
        for quick, ref in zip(fast, slow):
            for a, b in zip(quick.measurements, ref.measurements):
                assert a.coherent_delta_i == b.coherent_delta_i
                assert abs(a.v_min - b.v_min) < KERNEL_TOLERANCE_V
                assert abs(a.v_max - b.v_max) < KERNEL_TOLERANCE_V

    def test_solver_accounting_parity(self, chip, telemetry):
        """Batched dispatch reports the same per-run solver counters as
        the guarded path."""
        session = make_session(chip, telemetry, backend="batched")
        session.run_many(self.MAPPINGS)
        assert telemetry.counter("engine.solver.invocations") == len(
            self.MAPPINGS
        )
        assert telemetry.counter("engine.runs_executed") == len(self.MAPPINGS)

    def test_batch_failure_degrades_to_guarded(
        self, chip, telemetry, monkeypatch
    ):
        session = make_session(chip, telemetry, backend="batched")
        monkeypatch.setattr(
            session.runner,
            "run_batch",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("batch boom")),
        )
        results = session.run_many(self.MAPPINGS)
        assert len(results) == len(self.MAPPINGS)
        assert all(r.max_p2p > 0 for r in results)
        assert telemetry.counter("engine.batch.degraded") == 1
        assert telemetry.counter("engine.runs_executed") == len(self.MAPPINGS)

    def test_single_run_skips_batching(self, chip, telemetry, monkeypatch):
        """One miss never pays batch-dispatch overhead: run_batch is
        not consulted."""
        session = make_session(chip, telemetry, backend="batched")
        monkeypatch.setattr(
            session.runner,
            "run_batch",
            lambda *a, **k: (_ for _ in ()).throw(AssertionError("unused")),
        )
        result = session.run([didt()] * 6)
        assert result.max_p2p > 0
        assert telemetry.counter("engine.batch.degraded") == 0
