"""Session tests: cached execution, batching, campaign-level reuse."""

import pytest

from repro.engine import ResultCache, SimulationSession
from repro.machine.runner import RunOptions
from repro.machine.workload import idle_program
from repro.obs import Telemetry, set_telemetry

from .conftest import didt


class TestSingleRuns:
    def test_identical_runs_are_solved_once(self, session, telemetry):
        mapping = [didt()] * 6
        first = session.run(mapping)
        second = session.run(mapping)
        assert second is first
        assert telemetry.counter("engine.runs") == 2
        assert telemetry.counter("engine.runs_executed") == 1
        assert telemetry.counter("engine.cache.hits") == 1

    def test_deterministic_runs_shared_across_tags(self, session):
        mapping = [didt()] * 6
        assert session.run(mapping, run_tag="fig14") is session.run(
            mapping, run_tag="fig15"
        )

    def test_randomized_runs_distinct_per_tag(self, session, telemetry):
        mapping = [didt(sync=False)] * 6
        first = session.run(mapping, run_tag="a")
        second = session.run(mapping, run_tag="b")
        assert second is not first
        assert telemetry.counter("engine.runs_executed") == 2
        # …but the same tag replays.
        assert session.run(mapping, run_tag="a") is first

    def test_solver_call_accounting(self, session, telemetry):
        session.run([didt()] * 6)
        # segments=2 × 6 observed cores.
        assert telemetry.counter("engine.solver_calls") == 12
        assert telemetry.timer("engine.run_seconds") > 0.0

    def test_results_match_the_raw_runner(self, session):
        mapping = [didt()] * 3 + [idle_program(13.5)] * 3
        via_session = session.run(mapping)
        direct = session.runner.run(mapping, session.options, "whatever")
        assert via_session.p2p_by_core == direct.p2p_by_core


class TestBatchedRuns:
    def test_run_many_preserves_order_and_dedups(self, session, telemetry):
        distinct = [didt(i_high=30.0)] * 6
        mapping = [didt()] * 6
        results = session.run_many(
            [mapping, distinct, mapping], tags=["a", "b", "c"]
        )
        assert results[0] is results[2]
        assert results[1] is not results[0]
        assert telemetry.counter("engine.runs") == 3
        assert telemetry.counter("engine.runs_executed") == 2

    def test_run_many_reuses_single_run_entries(self, session, telemetry):
        mapping = [didt()] * 6
        single = session.run(mapping)
        executed = telemetry.counter("engine.runs_executed")
        (batched,) = session.run_many([mapping])
        assert batched is single
        assert telemetry.counter("engine.runs_executed") == executed

    def test_tag_length_mismatch_rejected(self, session):
        with pytest.raises(ValueError):
            session.run_many([[didt()] * 6], tags=["a", "b"])


class TestDerivedSessions:
    def test_derive_copies_options_and_shares_infrastructure(self, session):
        scope = session.derive(collect_waveforms=True, segments=1)
        assert scope.options.collect_waveforms is True
        assert scope.options.segments == 1
        assert session.options.collect_waveforms is False
        assert session.options.segments == 2
        assert scope.cache is session.cache
        assert scope.executor is session.executor
        assert scope.telemetry is session.telemetry

    def test_derived_runs_do_not_collide(self, session):
        mapping = [didt()] * 6
        plain = session.run(mapping)
        scoped = session.derive(collect_waveforms=True, segments=1).run(
            mapping
        )
        assert scoped is not plain
        assert scoped.waveforms


class TestCampaignReplay:
    def test_second_registry_pass_hits_cache(self):
        # The acceptance check of the engine refactor: running the same
        # experiment twice in one process must serve the second pass
        # from the result cache (>= 50 % hit rate measured on its own
        # telemetry).
        from repro.experiments import get_experiment, quick_context

        driver = get_experiment("fig14")
        original = set_telemetry(Telemetry())
        try:
            first = driver(quick_context())
            second_pass = Telemetry()
            set_telemetry(second_pass)
            second = driver(quick_context())
            assert second_pass.cache_hit_rate() >= 0.5
            assert second_pass.counter("engine.runs_executed") == 0
        finally:
            set_telemetry(original)
        assert (
            first.data["cross_cluster_worst"]
            == second.data["cross_cluster_worst"]
        )
