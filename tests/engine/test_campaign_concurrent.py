"""Multiprocess hammer tests for the campaign manifest.

Real processes (not threads) pound one manifest path through the
public mutators — the scenario the writer lock, the atomic-rename
stale-lock break, and the claim table exist for.  The invariants:

* no lost updates — every completion every process recorded survives;
* mutual exclusion — a locked read-modify-write counter never drops
  an increment, even with a stale lock seeded to force the break path;
* claim exclusivity — no run is ever handed to two workers at once.

Workers retry :class:`~repro.errors.ConcurrencyError` in a loop: the
retry budget inside the lock exists to *bound politeness*, not to make
a hammer test flaky.
"""

from __future__ import annotations

import json
import multiprocessing
import subprocess
import sys

import pytest

from repro.engine import CampaignManifest
from repro.errors import ConcurrencyError

PROCS = 4


def _until_locked(operation):
    """Run *operation* until it stops raising ConcurrencyError (the
    hammer's politeness loop; bounded by the test timeout)."""
    while True:
        try:
            return operation()
        except ConcurrencyError:
            continue


def _mark_worker(path: str, barrier, worker: str, points: list[str]) -> None:
    manifest = CampaignManifest(path)
    barrier.wait()
    for start in range(0, len(points), 5):
        batch = points[start:start + 5]
        _until_locked(
            lambda: manifest.mark_many_complete(batch, worker=worker)
        )


def _merge_worker(path: str, barrier, source: str) -> None:
    dest = CampaignManifest(path)
    shard = CampaignManifest(source)
    barrier.wait()
    _until_locked(lambda: dest.merge_from(shard))


def _claim_worker(path: str, barrier, worker: str, points: list[str],
                  out: str) -> None:
    manifest = CampaignManifest(path)
    barrier.wait()
    mine: list[str] = []
    while True:
        # Only ask for points we don't hold: re-offering an own claim
        # renews it (claimed again), which would loop forever here.
        candidates = [p for p in points if p not in mine]
        decision = _until_locked(
            lambda: manifest.claim_batch(
                candidates, worker=worker, limit=5, lease_s=3600.0
            )
        )
        mine.extend(decision.claimed)
        if not decision.claimed:
            # Exhausted, or everything left is under a live lease held
            # by a sibling (leases are an hour — nothing to steal).
            break
    with open(out, "w") as handle:
        json.dump(mine, handle)


def _counter_worker(path: str, barrier, counter: str, rounds: int) -> None:
    manifest = CampaignManifest(path)
    barrier.wait()
    for _ in range(rounds):
        def bump() -> None:
            with manifest.writer_lock():
                value = int(open(counter).read())
                with open(counter, "w") as handle:
                    handle.write(str(value + 1))
        _until_locked(bump)


def _run(target, argslist):
    barrier = multiprocessing.Barrier(len(argslist))
    procs = [
        multiprocessing.Process(target=target, args=(args[0], barrier, *args[1:]))
        for args in argslist
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=120)
    assert all(proc.exitcode == 0 for proc in procs)


@pytest.fixture()
def manifest(tmp_path):
    return CampaignManifest(tmp_path / "campaign-manifest.json")


class TestConcurrentWriters:
    def test_mark_many_complete_no_lost_updates(self, manifest):
        """Satellite acceptance: concurrent completion batches from
        different workers never lose updates."""
        path = str(manifest.path)
        plans = [
            (path, f"w{n}", [f"run:{n}-{i:02d}" for i in range(25)])
            for n in range(PROCS)
        ]
        _run(_mark_worker, plans)
        completed = manifest.completed
        for _, worker, points in plans:
            assert set(points) <= completed, f"{worker} lost updates"
        assert len(completed) == PROCS * 25
        accounting = manifest.fleet_accounting()
        assert all(accounting[f"w{n}"]["completed"] == 25
                   for n in range(PROCS))

    def test_merge_from_concurrent_writers(self, manifest, tmp_path):
        """Satellite acceptance: shard folds racing each other publish
        atomically — the union holds every shard's points."""
        shards = []
        for n in range(PROCS):
            shard = CampaignManifest(
                tmp_path / f"shard{n}" / "campaign-manifest.json"
            )
            shard.path.parent.mkdir(parents=True)
            shard.bind_campaign({"plan": "abc", "shard": f"{n}of{PROCS}"})
            shard.mark_many_complete([f"run:{n}-{i:02d}" for i in range(20)])
            shards.append(shard)
        _run(
            _merge_worker,
            [(str(manifest.path), str(s.path)) for s in shards],
        )
        assert len(manifest.completed) == PROCS * 20
        assert manifest.campaign == {"plan": "abc"}

    def test_claim_batch_grants_are_disjoint(self, manifest, tmp_path):
        """No run is ever claimed by two live workers: the union of the
        claim grants covers the campaign, with zero overlap."""
        points = [f"run:{i:03d}" for i in range(40)]
        outs = [str(tmp_path / f"claims-{n}.json") for n in range(PROCS)]
        _run(
            _claim_worker,
            [
                (str(manifest.path), f"w{n}", points, outs[n])
                for n in range(PROCS)
            ],
        )
        grants = [json.load(open(out)) for out in outs]
        flat = [point for grant in grants for point in grant]
        assert len(flat) == len(set(flat)), "a run was claimed twice"
        assert set(flat) == set(points)

    def test_locked_counter_with_seeded_stale_lock(self, manifest, tmp_path):
        """Mutual exclusion through the stale-lock break: a dead
        holder's lockfile is seeded before the stampede, and the
        locked read-modify-write counter still never drops an
        increment (exactly one breaker may win the rename)."""
        dead = subprocess.Popen([sys.executable, "-c", "pass"])
        dead.wait()
        manifest.lock_path.parent.mkdir(parents=True, exist_ok=True)
        manifest.lock_path.write_text(str(dead.pid))
        counter = tmp_path / "counter.txt"
        counter.write_text("0")
        rounds = 20
        _run(
            _counter_worker,
            [(str(manifest.path), str(counter), rounds)] * PROCS,
        )
        assert int(counter.read_text()) == PROCS * rounds
        assert not manifest.lock_path.exists()
