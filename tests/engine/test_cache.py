"""Result cache tests: LRU bound, disk tier, telemetry accounting."""

import os
import pickle
import time

import pytest

from repro.engine.cache import (
    QUARANTINE_MAX_AGE_S,
    ResultCache,
    configure_cache,
    global_cache,
)
from repro.obs import Telemetry


@pytest.fixture()
def telemetry():
    return Telemetry()


class TestMemoryTier:
    def test_roundtrip_and_default(self, telemetry):
        cache = ResultCache(telemetry=telemetry)
        assert cache.get("k") is None
        assert cache.get("k", default="fallback") == "fallback"
        cache.put("k", 42)
        assert cache.get("k") == 42
        assert "k" in cache
        assert len(cache) == 1

    def test_lru_eviction_prefers_recent(self, telemetry):
        cache = ResultCache(max_entries=2, telemetry=telemetry)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a" — "b" becomes the LRU entry
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert telemetry.counter("engine.cache.evictions") == 1

    def test_hit_miss_counters(self, telemetry):
        cache = ResultCache(telemetry=telemetry)
        cache.get("missing")
        cache.put("k", 1)
        cache.get("k")
        assert telemetry.counter("engine.cache.misses") == 1
        assert telemetry.counter("engine.cache.hits") == 1
        assert telemetry.cache_hit_rate() == pytest.approx(0.5)

    def test_clear_drops_memory(self, telemetry):
        cache = ResultCache(telemetry=telemetry)
        cache.put("k", 1)
        cache.clear()
        assert "k" not in cache

    def test_bad_bound_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)


class TestDiskTier:
    def test_cache_dir_created_eagerly(self, tmp_path, telemetry):
        """The directory must exist from construction — a
        CampaignManifest handed the same path has to resolve it as a
        directory, not claim the path as its manifest file."""
        target = tmp_path / "new" / "cache"
        ResultCache(cache_dir=target, telemetry=telemetry)
        assert target.is_dir()

    def test_persists_across_instances(self, tmp_path, telemetry):
        first = ResultCache(cache_dir=tmp_path, telemetry=telemetry)
        first.put("deadbeef", {"p2p": 1.5})
        second = ResultCache(cache_dir=tmp_path, telemetry=telemetry)
        assert second.get("deadbeef") == {"p2p": 1.5}
        assert telemetry.counter("engine.cache.disk_hits") == 1
        assert telemetry.counter("engine.cache.disk_writes") == 1

    def test_disk_hit_promotes_to_memory(self, tmp_path, telemetry):
        ResultCache(cache_dir=tmp_path, telemetry=telemetry).put("k1", "v")
        cache = ResultCache(cache_dir=tmp_path, telemetry=telemetry)
        cache.get("k1")
        cache.get("k1")
        assert telemetry.counter("engine.cache.disk_hits") == 1
        assert telemetry.counter("engine.cache.hits") == 2

    def test_entries_are_sharded_by_prefix(self, tmp_path, telemetry):
        cache = ResultCache(cache_dir=tmp_path, telemetry=telemetry)
        cache.put("abcd", 1)
        assert (tmp_path / "ab" / "abcd.pkl").exists()

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path, telemetry):
        cache = ResultCache(cache_dir=tmp_path, telemetry=telemetry)
        cache.put("abcd", 1)
        path = tmp_path / "ab" / "abcd.pkl"
        path.write_bytes(b"not a pickle")
        fresh = ResultCache(cache_dir=tmp_path, telemetry=telemetry)
        assert fresh.get("abcd") is None
        assert not path.exists()

    def test_no_temp_droppings_after_writes(self, tmp_path, telemetry):
        # Atomic publish: only final *.pkl files may exist, never a
        # half-written temp file a reader could trip over.
        cache = ResultCache(cache_dir=tmp_path, telemetry=telemetry)
        for i in range(5):
            cache.put(f"key{i}", list(range(100)))
        leftovers = [
            path
            for path in tmp_path.rglob("*")
            if path.is_file() and path.suffix != ".pkl"
        ]
        assert leftovers == []


class TestQuarantine:
    def test_corrupt_entry_is_parked_for_post_mortem(self, tmp_path, telemetry):
        cache = ResultCache(cache_dir=tmp_path, telemetry=telemetry)
        cache.put("abcd", {"v": 1})
        (tmp_path / "ab" / "abcd.pkl").write_bytes(b"torn write")
        fresh = ResultCache(cache_dir=tmp_path, telemetry=telemetry)
        assert fresh.get("abcd") is None
        assert telemetry.counter("engine.cache.quarantined") == 1
        assert (tmp_path / "quarantine" / "abcd.pkl").exists()

    def test_recompute_republishes_over_quarantined_key(
        self, tmp_path, telemetry
    ):
        cache = ResultCache(cache_dir=tmp_path, telemetry=telemetry)
        cache.put("abcd", {"v": 1})
        (tmp_path / "ab" / "abcd.pkl").write_bytes(b"torn write")
        fresh = ResultCache(cache_dir=tmp_path, telemetry=telemetry)
        assert fresh.get("abcd") is None  # quarantines
        fresh.put("abcd", {"v": 2})  # the recompute
        again = ResultCache(cache_dir=tmp_path, telemetry=telemetry)
        assert again.get("abcd") == {"v": 2}
        assert telemetry.counter("engine.cache.quarantined") == 1

    def test_quarantine_dir_disabled_without_disk_tier(self, telemetry):
        assert ResultCache(telemetry=telemetry).quarantine_dir() is None

    def test_entries_survive_memory_clear(self, tmp_path, telemetry):
        cache = ResultCache(cache_dir=tmp_path, telemetry=telemetry)
        cache.put("abcd", [1, 2])
        cache.clear()
        assert cache.get("abcd") == [1, 2]

    def test_values_use_plain_pickle(self, tmp_path, telemetry):
        cache = ResultCache(cache_dir=tmp_path, telemetry=telemetry)
        cache.put("abcd", {"x": 1})
        with (tmp_path / "ab" / "abcd.pkl").open("rb") as handle:
            assert pickle.load(handle) == {"x": 1}


class TestQuarantineAging:
    @staticmethod
    def seed_quarantine(tmp_path, names, age_s=0.0):
        quarantine = tmp_path / "quarantine"
        quarantine.mkdir(parents=True, exist_ok=True)
        now = time.time()
        for name in names:
            path = quarantine / f"{name}.pkl"
            path.write_bytes(b"junk")
            os.utime(path, (now - age_s, now - age_s))
        return quarantine

    def test_stale_entries_pruned_on_open(self, tmp_path, telemetry):
        quarantine = self.seed_quarantine(
            tmp_path, ["old1", "old2"], age_s=QUARANTINE_MAX_AGE_S + 60
        )
        self.seed_quarantine(tmp_path, ["fresh"], age_s=60.0)
        ResultCache(cache_dir=tmp_path, telemetry=telemetry)
        survivors = sorted(p.name for p in quarantine.iterdir())
        assert survivors == ["fresh.pkl"]
        assert telemetry.counter("engine.cache.quarantine_pruned") == 2

    def test_count_bound_drops_oldest_first(self, tmp_path, telemetry):
        quarantine = tmp_path / "quarantine"
        quarantine.mkdir(parents=True)
        now = time.time()
        for i in range(6):  # entry0 is the oldest
            path = quarantine / f"entry{i}.pkl"
            path.write_bytes(b"junk")
            os.utime(path, (now - 600 + i, now - 600 + i))
        cache = ResultCache(cache_dir=tmp_path, telemetry=telemetry)
        pruned = cache.prune_quarantine(max_entries=4, max_age_s=86400.0)
        assert pruned == 2
        survivors = sorted(p.name for p in quarantine.iterdir())
        assert survivors == [f"entry{i}.pkl" for i in range(2, 6)]

    def test_fresh_small_quarantine_untouched(self, tmp_path, telemetry):
        quarantine = self.seed_quarantine(tmp_path, ["a", "b"], age_s=10.0)
        cache = ResultCache(cache_dir=tmp_path, telemetry=telemetry)
        assert cache.prune_quarantine() == 0
        assert len(list(quarantine.iterdir())) == 2
        assert telemetry.counter("engine.cache.quarantine_pruned") == 0

    def test_injected_ts_makes_aging_deterministic(self, tmp_path, telemetry):
        self.seed_quarantine(tmp_path, ["x"], age_s=0.0)
        cache = ResultCache(cache_dir=tmp_path, telemetry=telemetry)
        future = time.time() + QUARANTINE_MAX_AGE_S + 1.0
        assert cache.prune_quarantine(now=future) == 1

    def test_missing_quarantine_dir_is_fine(self, tmp_path, telemetry):
        cache = ResultCache(cache_dir=tmp_path, telemetry=telemetry)
        assert cache.prune_quarantine() == 0


class TestGlobalCache:
    def test_configure_cache_rebuilds_global(self, tmp_path):
        original = global_cache()
        try:
            rebuilt = configure_cache(max_entries=7, cache_dir=tmp_path)
            assert global_cache() is rebuilt
            assert rebuilt.max_entries == 7
            assert rebuilt.cache_dir == tmp_path
            disabled = configure_cache(cache_dir=None)
            assert disabled.cache_dir is None
            assert disabled.max_entries == 7
        finally:
            configure_cache(
                max_entries=original.max_entries,
                cache_dir=original.cache_dir,
            )
