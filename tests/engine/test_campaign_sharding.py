"""Campaign manifest concurrency + shard-merge bookkeeping: the writer
lock, manifest folding, and the disk-cache merge."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.engine import CampaignManifest, ResultCache
from repro.engine.cache import merge_cache_dirs
from repro.errors import ConcurrencyError, ConfigError


@pytest.fixture()
def manifest(tmp_path):
    return CampaignManifest(tmp_path / "campaign-manifest.json")


class TestWriterLock:
    def test_second_live_writer_refused(self, manifest):
        other = CampaignManifest(manifest.path)
        with manifest.writer_lock():
            with pytest.raises(ConcurrencyError):
                with other.writer_lock():
                    pass  # pragma: no cover - must not be reached

    def test_lock_released_on_exit(self, manifest):
        with manifest.writer_lock():
            assert manifest.lock_path.exists()
        assert not manifest.lock_path.exists()
        with manifest.writer_lock():  # re-acquirable
            pass

    def test_stale_lock_with_dead_pid_is_broken(self, manifest):
        process = subprocess.Popen([sys.executable, "-c", "pass"])
        process.wait()
        manifest.lock_path.parent.mkdir(parents=True, exist_ok=True)
        manifest.lock_path.write_text(str(process.pid))
        with manifest.writer_lock():
            assert manifest._lock_holder() != process.pid

    def test_unreadable_lock_is_broken(self, manifest):
        manifest.lock_path.parent.mkdir(parents=True, exist_ok=True)
        manifest.lock_path.write_text("not-a-pid")
        with manifest.writer_lock():
            pass

    def test_released_after_exception(self, manifest):
        with pytest.raises(RuntimeError):
            with manifest.writer_lock():
                raise RuntimeError("boom")
        assert not manifest.lock_path.exists()


class TestCampaignIdentity:
    def test_bind_and_rebind_same_plan(self, manifest):
        manifest.bind_campaign({"plan": "abc", "shard": "0/2"})
        manifest.bind_campaign({"plan": "abc", "shard": "1/2"})
        assert manifest.campaign == {"plan": "abc", "shard": "1/2"}

    def test_rebind_to_different_plan_refused(self, manifest):
        manifest.bind_campaign({"plan": "abc"})
        with pytest.raises(ConfigError):
            manifest.bind_campaign({"plan": "xyz"})


class TestMarkManyComplete:
    def test_batch_mark(self, manifest):
        manifest.mark_many_complete(["run:a", "run:b"])
        assert manifest.completed == {"run:a", "run:b"}

    def test_empty_batch_writes_nothing(self, manifest):
        manifest.mark_many_complete([])
        assert not manifest.path.exists()


class TestMergeFrom:
    def _shard(self, tmp_path, name: str, plan: str = "abc"):
        shard = CampaignManifest(tmp_path / name / "campaign-manifest.json")
        shard.path.parent.mkdir(parents=True, exist_ok=True)
        shard.bind_campaign({"plan": plan, "shard": name})
        return shard

    def test_union_of_shard_points(self, manifest, tmp_path):
        a = self._shard(tmp_path, "0of2")
        b = self._shard(tmp_path, "1of2")
        a.mark_many_complete(["run:1", "run:2"])
        b.mark_many_complete(["run:3"])
        absorbed = manifest.merge_from(a, b)
        assert absorbed >= 3
        assert {"run:1", "run:2", "run:3"} <= manifest.completed
        # The union adopts the plan identity but is no single shard.
        assert manifest.campaign == {"plan": "abc"}

    def test_status_precedence(self, manifest, tmp_path):
        a = self._shard(tmp_path, "0of2")
        b = self._shard(tmp_path, "1of2")
        a.mark_failed("run:1", "transient host fault")
        b.mark_complete("run:1")
        manifest.merge_from(a, b)
        assert manifest.is_complete("run:1")
        # Merging the failure again must not demote the completed point.
        manifest.merge_from(a)
        assert manifest.is_complete("run:1")

    def test_different_campaigns_refused(self, manifest, tmp_path):
        a = self._shard(tmp_path, "0of2", plan="abc")
        other = self._shard(tmp_path, "other", plan="xyz")
        manifest.merge_from(a)
        with pytest.raises(ConfigError):
            manifest.merge_from(other)

    def test_merge_reentrant_under_own_lock(self, manifest, tmp_path):
        # The writer lock is reentrant within the owning thread, so a
        # caller already holding the lock may fold shards; exclusion
        # against *other* writers is TestWriterLock's
        # test_second_live_writer_refused.
        a = self._shard(tmp_path, "0of2")
        a.mark_many_complete(["run:1"])
        with manifest.writer_lock():
            assert manifest.merge_from(a) >= 1
        assert not manifest.lock_path.exists()
        assert manifest.is_complete("run:1")


class TestMergeCacheDirs:
    def _cache(self, path, entries: dict[str, object]) -> ResultCache:
        cache = ResultCache(cache_dir=path)
        for key, value in entries.items():
            cache.put(key, value)
        return cache

    def test_union_and_skip_counts(self, tmp_path):
        key_a = "a" * 64
        key_b = "b" * 64
        key_shared = "c" * 64
        self._cache(tmp_path / "s0", {key_a: 1, key_shared: 3})
        self._cache(tmp_path / "s1", {key_b: 2, key_shared: 3})
        copied, skipped = merge_cache_dirs(
            tmp_path / "dest", tmp_path / "s0", tmp_path / "s1"
        )
        assert copied == 3
        assert skipped == 1  # the shared entry arrived with shard 0
        merged = ResultCache(cache_dir=tmp_path / "dest")
        assert merged.get(key_a) == 1
        assert merged.get(key_b) == 2
        assert merged.get(key_shared) == 3

    def test_idempotent(self, tmp_path):
        self._cache(tmp_path / "s0", {"d" * 64: 4})
        assert merge_cache_dirs(tmp_path / "dest", tmp_path / "s0") == (1, 0)
        assert merge_cache_dirs(tmp_path / "dest", tmp_path / "s0") == (0, 1)

    def test_quarantine_not_merged(self, tmp_path):
        self._cache(tmp_path / "s0", {"e" * 64: 5})
        quarantine = tmp_path / "s0" / "quarantine"
        quarantine.mkdir()
        (quarantine / "ff.pkl").write_bytes(b"torn pickle")
        merge_cache_dirs(tmp_path / "dest", tmp_path / "s0")
        assert not (tmp_path / "dest" / "quarantine").exists()

    def test_missing_source_ignored(self, tmp_path):
        assert merge_cache_dirs(
            tmp_path / "dest", tmp_path / "nonexistent"
        ) == (0, 0)
