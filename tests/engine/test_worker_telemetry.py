"""Worker-side telemetry survives the process-pool boundary.

Before the multiprocess merge, metrics recorded inside pool workers
(solver invocations, solver wall clock, chip rebuilds) silently
vanished: a ``--jobs N`` campaign under-reported exactly the work it
parallelized.  These tests pin the fix: a process-pool batch reports
*identical* merged counters to the same batch run serially — including
under injected faults, whose deterministic per-run-key schedule makes
the comparison exact.
"""

from __future__ import annotations

import pytest

from repro.engine import ResultCache, SimulationSession
from repro.engine.executor import ProcessExecutor, SerialExecutor
from repro.engine.resilience import RetryPolicy
from repro.faults import FaultPlan
from repro.faults.harness import reset_fault_memo
from repro.machine.runner import RunOptions
from repro.obs import Telemetry

from .conftest import didt

FAST_RETRY = RetryPolicy(max_retries=2, backoff_base_s=0.0)

#: The counters/timers the merge must carry across the pool boundary
#: (worker-side) plus the parent-side ones that must stay consistent.
WORKER_COUNTERS = (
    "engine.runs",
    "engine.runs_executed",
    "engine.retries",
    "engine.failures",
    "engine.cache.hits",
    "engine.cache.misses",
    "engine.solver.invocations",
)


def run_batch(chip, executor, faults=None, n=5):
    """One isolated batch of *n* distinct runs; returns its telemetry."""
    # Forked pool workers inherit the parent's transient-fault memo, so
    # clear it per batch: both backends must see the same fresh plan.
    reset_fault_memo()
    telemetry = Telemetry()
    session = SimulationSession(
        chip,
        RunOptions(segments=2, base_samples=1024),
        cache=ResultCache(telemetry=telemetry),
        executor=executor,
        retry=FAST_RETRY,
        on_failure="collect",
        faults=faults,
        telemetry=telemetry,
    )
    mappings = [[didt(i_high=24.0 + i)] * 6 for i in range(n)]
    session.run_many(mappings, [("wtel", i) for i in range(n)])
    return telemetry


class TestWorkerTelemetryMerge:
    def test_pool_counters_match_serial(self, chip):
        serial = run_batch(chip, SerialExecutor())
        pooled = run_batch(chip, ProcessExecutor(jobs=2))
        for name in WORKER_COUNTERS:
            assert pooled.counter(name) == serial.counter(name), name
        # The worker-side solver counter actually counted the runs.
        assert serial.counter("engine.solver.invocations") == 5

    def test_pool_counters_match_serial_under_faults(self, chip):
        # The fault schedule is a pure function of the run key, so the
        # same runs fail/retry under both backends and the merged
        # counters must agree exactly — the acceptance criterion.
        plan = FaultPlan(seed=3, exception_rate=0.5)
        serial = run_batch(chip, SerialExecutor(), faults=plan)
        pooled = run_batch(chip, ProcessExecutor(jobs=2), faults=plan)
        assert serial.counter("engine.retries") > 0  # faults actually fired
        for name in WORKER_COUNTERS:
            assert pooled.counter(name) == serial.counter(name), name

    def test_pool_histograms_and_timers_merge(self, chip):
        pooled = run_batch(chip, ProcessExecutor(jobs=2))
        # Worker-side solver wall clock crossed the boundary...
        solver = pooled.histogram("engine.solver.seconds")
        assert solver is not None and solver.count == 5
        assert solver.total > 0.0
        # ...and the parent-side run-latency histogram saw every run.
        histogram = pooled.histogram("engine.run.seconds")
        assert histogram is not None and histogram.count == 5
        attempts = pooled.histogram("engine.run.attempts")
        assert attempts is not None and attempts.count == 5

    def test_serial_executor_still_records_in_caller_scope(self, chip):
        # The capture/merge dance in the serial path must be invisible:
        # metrics land in the session sink exactly as before.
        telemetry = run_batch(chip, SerialExecutor(), n=2)
        assert telemetry.counter("engine.runs_executed") == 2
        assert telemetry.counter("engine.solver.invocations") == 2
        solver = telemetry.histogram("engine.solver.seconds")
        assert solver is not None and solver.count == 2


class TestExplicitSinkRouting:
    def test_map_guarded_merges_into_passed_sink(self):
        sink = Telemetry()

        def records_ambient(x):
            from repro.obs import get_telemetry

            get_telemetry().increment("inside")
            return x

        SerialExecutor().map_guarded(
            records_ambient,
            [1, 2, 3],
            RetryPolicy(max_retries=0, backoff_base_s=0.0),
            telemetry=sink,
        )
        assert sink.counter("inside") == 3

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_process_map_guarded_merges_into_passed_sink(self, jobs):
        sink = Telemetry()
        ProcessExecutor(jobs=jobs).map_guarded(
            _count_ambient,
            [1, 2, 3, 4],
            RetryPolicy(max_retries=0, backoff_base_s=0.0),
            telemetry=sink,
        )
        assert sink.counter("inside") == 4


def _count_ambient(x):
    from repro.obs import get_telemetry

    get_telemetry().increment("inside")
    return x
