"""Lease-based claiming on the campaign manifest: batching, renewal,
stealing, quarantine, release, and the fleet accounting view.

Every test drives :meth:`CampaignManifest.claim_batch` with an explicit
``now`` so lease expiry is a pure function of the inputs — no sleeps.
"""

from __future__ import annotations

import json

import pytest

from repro.engine.campaign import CampaignManifest, ClaimDecision
from repro.errors import ConfigError
from repro.ioutil import atomic_write_json

POINTS = [f"run:{i:02d}" for i in range(6)]
T0 = 1000.0


@pytest.fixture()
def manifest(tmp_path):
    return CampaignManifest(tmp_path / "campaign-manifest.json")


class TestClaimBatch:
    def test_limit_and_remaining(self, manifest):
        decision = manifest.claim_batch(
            POINTS, worker="a", limit=4, lease_s=30.0,
            host="h1", pid=111, now=T0,
        )
        assert decision.claimed == POINTS[:4]
        assert decision.remaining == 2
        assert decision.pending == 0
        assert not decision.stolen and not decision.poisoned
        assert not decision.exhausted
        claims = manifest.claims()
        assert set(claims) == set(POINTS[:4])
        assert claims[POINTS[0]] == {
            "worker": "a", "deadline": T0 + 30.0, "host": "h1", "pid": 111,
        }
        assert not manifest.lock_path.exists()  # released

    def test_validation(self, manifest):
        with pytest.raises(ConfigError):
            manifest.claim_batch(POINTS, worker="a", limit=0)
        with pytest.raises(ConfigError):
            manifest.claim_batch(POINTS, worker="a", lease_s=0.0)

    def test_terminal_points_not_claimable(self, manifest):
        manifest.mark_complete(POINTS[0])
        manifest.mark_failed(POINTS[1], "boom")
        decision = manifest.claim_batch(
            POINTS[:2], worker="a", limit=4, now=T0
        )
        assert decision.claimed == []
        assert decision.exhausted

    def test_live_foreign_lease_is_pending(self, manifest):
        manifest.claim_batch(POINTS[:1], worker="a", lease_s=30.0, now=T0)
        decision = manifest.claim_batch(
            POINTS[:1], worker="b", lease_s=30.0, now=T0 + 10.0
        )
        assert decision.claimed == []
        assert decision.pending == 1
        assert not decision.exhausted  # someone is working; poll again

    def test_reclaiming_own_lease_renews_without_steal(self, manifest):
        manifest.claim_batch(POINTS[:1], worker="a", lease_s=30.0, now=T0)
        decision = manifest.claim_batch(
            POINTS[:1], worker="a", lease_s=30.0, now=T0 + 100.0
        )
        assert decision.claimed == POINTS[:1]
        assert decision.stolen == []
        assert manifest.claims()[POINTS[0]]["deadline"] == T0 + 130.0

    def test_expired_lease_is_stolen(self, manifest):
        manifest.claim_batch(POINTS[:1], worker="a", lease_s=30.0, now=T0)
        decision = manifest.claim_batch(
            POINTS[:1], worker="b", lease_s=30.0, now=T0 + 31.0
        )
        assert decision.claimed == POINTS[:1]
        assert decision.stolen == POINTS[:1]
        entry = manifest.load()["points"][POINTS[0]]
        assert entry["claim"]["worker"] == "b"
        assert entry["claim"]["stolen_from"] == "a"
        assert entry["steals"] == 1
        assert entry["victims"] == ["a"]

    def test_corrupt_lease_counts_as_expired(self, manifest):
        """A scribbled claim entry (lease corruption chaos) must be
        immediately stealable, never claimable-by-nobody forever."""
        manifest.claim_batch(POINTS[:1], worker="a", lease_s=30.0, now=T0)
        payload = manifest.load()
        payload["points"][POINTS[0]]["claim"] = {
            "worker": "a", "deadline": "0xGARBAGE",
        }
        atomic_write_json(manifest.path, payload)
        decision = manifest.claim_batch(
            POINTS[:1], worker="b", lease_s=30.0, now=T0 + 1.0
        )
        assert decision.stolen == POINTS[:1]

    def test_poisoned_after_distinct_victims(self, manifest):
        """A run whose lease keeps expiring under fresh workers is
        benched after ``poison_after`` distinct victims."""
        point = POINTS[:1]
        now = T0
        for victim in ("a", "b", "c"):
            decision = manifest.claim_batch(
                point, worker=victim, lease_s=10.0,
                poison_after=3, now=now,
            )
            assert decision.claimed == point
            now += 11.0  # the lease expires unheartbeaten
        decision = manifest.claim_batch(
            point, worker="d", poison_after=3, now=now
        )
        assert decision.poisoned == point
        assert decision.claimed == []
        entry = manifest.load()["points"][point[0]]
        assert entry["status"] == "poisoned"
        assert entry["victims"] == ["a", "b", "c"]
        assert "3 distinct workers" in entry["reason"]
        # Poisoned is terminal: nobody gets it again.
        after = manifest.claim_batch(point, worker="e", now=now + 1.0)
        assert after.claimed == [] and after.exhausted

    def test_exhausted_only_when_nothing_left(self):
        assert ClaimDecision().exhausted
        assert not ClaimDecision(claimed=["run:0"]).exhausted
        assert not ClaimDecision(pending=1).exhausted
        assert not ClaimDecision(remaining=1).exhausted


class TestRenewRelease:
    def test_renew_extends_deadline(self, manifest):
        manifest.claim_batch(POINTS[:2], worker="a", lease_s=30.0, now=T0)
        renewed = manifest.renew_claims(
            POINTS[:2], worker="a", lease_s=30.0, now=T0 + 20.0
        )
        assert renewed == POINTS[:2]
        assert manifest.claims()[POINTS[0]]["deadline"] == T0 + 50.0

    def test_renew_skips_stolen_and_finished(self, manifest):
        manifest.claim_batch(POINTS[:3], worker="a", lease_s=10.0, now=T0)
        # One point stolen by b, one completed; only the third renews.
        manifest.claim_batch(
            POINTS[:1], worker="b", lease_s=30.0, now=T0 + 11.0
        )
        manifest.mark_many_complete(POINTS[1:2], worker="a")
        renewed = manifest.renew_claims(
            POINTS[:3], worker="a", now=T0 + 12.0
        )
        assert renewed == POINTS[2:3]

    def test_release_returns_points_to_the_pool(self, manifest):
        manifest.claim_batch(POINTS[:2], worker="a", lease_s=3600.0, now=T0)
        assert manifest.release_claims(POINTS[:2], worker="a") == 2
        assert manifest.claims() == {}
        # Claimable again immediately — and NOT as a steal (released,
        # not expired).
        decision = manifest.claim_batch(
            POINTS[:2], worker="b", now=T0 + 1.0
        )
        assert decision.claimed == POINTS[:2]
        assert decision.stolen == []

    def test_release_only_touches_own_claims(self, manifest):
        manifest.claim_batch(POINTS[:1], worker="a", lease_s=3600.0, now=T0)
        assert manifest.release_claims(POINTS[:1], worker="b") == 0
        assert manifest.claims()[POINTS[0]]["worker"] == "a"

    def test_release_preserves_steal_history(self, manifest):
        manifest.claim_batch(POINTS[:1], worker="a", lease_s=10.0, now=T0)
        manifest.claim_batch(
            POINTS[:1], worker="b", lease_s=10.0, now=T0 + 11.0
        )
        manifest.release_claims(POINTS[:1], worker="b")
        entry = manifest.load()["points"][POINTS[0]]
        assert entry["status"] == "started"
        assert entry["victims"] == ["a"]
        assert entry["steals"] == 1


class TestFleetAccounting:
    def test_per_worker_tallies(self, manifest):
        manifest.claim_batch(POINTS[:2], worker="a", lease_s=30.0, now=T0)
        manifest.mark_many_complete(POINTS[:2], worker="a")
        manifest.mark_failed(POINTS[2], "boom", worker="a")
        # b steals an expired lease of c, then completes it.
        manifest.claim_batch(POINTS[3:4], worker="c", lease_s=10.0, now=T0)
        manifest.claim_batch(
            POINTS[3:4], worker="b", lease_s=30.0, now=T0 + 11.0
        )
        manifest.mark_many_complete(POINTS[3:4], worker="b")
        assert manifest.fleet_accounting() == {
            "a": {"completed": 2, "stolen": 0, "failed": 1},
            "b": {"completed": 1, "stolen": 1, "failed": 0},
        }

    def test_completion_preserves_steals(self, manifest):
        """mark_many_complete keeps the steal count recorded on the
        claim entry — the provenance the accounting reads."""
        manifest.claim_batch(POINTS[:1], worker="a", lease_s=10.0, now=T0)
        manifest.claim_batch(
            POINTS[:1], worker="b", lease_s=30.0, now=T0 + 11.0
        )
        manifest.mark_many_complete(POINTS[:1], worker="b")
        entry = manifest.load()["points"][POINTS[0]]
        assert entry == {"status": "complete", "steals": 1, "worker": "b"}

    def test_json_payload_stays_plain(self, manifest):
        """The claim table round-trips through plain JSON (no custom
        encoders) — what keeps it mergeable and greppable."""
        manifest.claim_batch(
            POINTS, worker="a", limit=3, host="h", pid=1, now=T0
        )
        parsed = json.loads(manifest.path.read_text())
        assert parsed["points"][POINTS[0]]["status"] == "claimed"
