"""Backend-independence regression: serial and process execution must
produce bit-identical results.

Every run derives its random phase streams by name (chip, segment,
core), never from shared mutable RNG state, so fanning a batch out over
worker processes cannot change any reading.  This is what makes
``--jobs N`` safe to use on real campaigns — and what this test guards.
"""

from repro.engine import (
    ProcessExecutor,
    ResultCache,
    RetryPolicy,
    SimulationSession,
)
from repro.faults import FaultPlan, corrupt_cache_entries, reset_fault_memo
from repro.machine.runner import RunOptions
from repro.machine.workload import idle_program
from repro.obs import Telemetry

from .conftest import didt


def batch():
    """Three mappings with randomized phases (the hard case: the runs
    actually consume the seed) plus one deterministic mapping."""
    unsync = didt(sync=False)
    return (
        [
            [unsync] * 6,
            [unsync] * 3 + [idle_program(13.5)] * 3,
            [didt(sync=True)] * 6,
        ],
        ["u6", "u3", "s6"],
    )


def test_serial_and_process_runs_are_bit_identical(chip):
    options = RunOptions(segments=2, base_samples=1024)
    mappings, tags = batch()

    serial = SimulationSession(
        chip, options,
        cache=ResultCache(telemetry=Telemetry()),
        executor="serial", telemetry=Telemetry(),
    )
    process = SimulationSession(
        chip, options,
        cache=ResultCache(telemetry=Telemetry()),
        executor=ProcessExecutor(jobs=2), telemetry=Telemetry(),
    )

    serial_results = serial.run_many(mappings, tags)
    process_results = process.run_many(mappings, tags)

    assert process.telemetry.counter("engine.runs_executed") == len(mappings)
    for fast, slow in zip(process_results, serial_results):
        assert fast.p2p_by_core == slow.p2p_by_core
        assert fast.worst_vmin == slow.worst_vmin
        assert [m.coherent_delta_i for m in fast.measurements] == [
            m.coherent_delta_i for m in slow.measurements
        ]


def assert_identical(results, reference):
    for fast, slow in zip(results, reference):
        assert fast.p2p_by_core == slow.p2p_by_core
        assert fast.worst_vmin == slow.worst_vmin


def test_fault_injected_sweep_is_bit_identical_to_fault_free(chip, tmp_path):
    """The robustness acceptance criterion: a sweep whose runs crash
    workers and raise injected exceptions — and whose disk cache then
    has two entries torn — must still complete with results
    bit-identical to a fault-free serial sweep.  Fault decisions are
    content-keyed and the resilience layer (retry, pool degradation,
    quarantine-and-recompute) only ever re-executes pure runs, so no
    fault can leak into a result."""
    options = RunOptions(segments=2, base_samples=1024)
    mappings = [
        [didt(i_high=18.0 + i)] + [None] * 5 for i in range(6)
    ] + [[didt(sync=False)] * 6, [didt()] * 3 + [idle_program(13.5)] * 3]
    tags = [f"f{i}" for i in range(len(mappings))]

    reference = SimulationSession(
        chip, options,
        cache=ResultCache(telemetry=Telemetry()),
        executor="serial", faults=None, telemetry=Telemetry(),
    ).run_many(mappings, tags)

    reset_fault_memo()
    cache_dir = tmp_path / "cache"
    plan = FaultPlan(
        seed=3, crash_rate=0.2, exception_rate=0.3, corrupt_entries=2
    )
    telemetry = Telemetry()
    injected_session = SimulationSession(
        chip, options,
        cache=ResultCache(cache_dir=cache_dir, telemetry=telemetry),
        executor=ProcessExecutor(jobs=2),
        retry=RetryPolicy(max_retries=2, backoff_base_s=0.0),
        faults=plan,
        telemetry=telemetry,
    )
    try:
        injected = injected_session.run_many(mappings, tags)
    finally:
        reset_fault_memo()
    assert telemetry.counter("engine.retries") >= 1  # the plan did fire
    assert_identical(injected, reference)

    # Tear two checkpointed entries the way a kill without atomic
    # writes would; a fresh session quarantines them, replays the
    # healthy entries, and recomputes exactly the torn runs.
    victims = corrupt_cache_entries(cache_dir, plan)
    assert len(victims) == plan.corrupt_entries
    replay_telemetry = Telemetry()
    replayed = SimulationSession(
        chip, options,
        cache=ResultCache(cache_dir=cache_dir, telemetry=replay_telemetry),
        executor="serial", faults=None, telemetry=replay_telemetry,
    ).run_many(mappings, tags)
    assert replay_telemetry.counter("engine.cache.quarantined") == 2
    assert replay_telemetry.counter("engine.runs_executed") == 2
    assert replay_telemetry.counter("engine.cache.disk_hits") == len(
        mappings
    ) - 2
    assert_identical(replayed, reference)
