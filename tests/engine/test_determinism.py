"""Backend-independence regression: serial and process execution must
produce bit-identical results.

Every run derives its random phase streams by name (chip, segment,
core), never from shared mutable RNG state, so fanning a batch out over
worker processes cannot change any reading.  This is what makes
``--jobs N`` safe to use on real campaigns — and what this test guards.
"""

from repro.engine import ProcessExecutor, ResultCache, SimulationSession
from repro.machine.runner import RunOptions
from repro.machine.workload import idle_program
from repro.telemetry import Telemetry

from .conftest import didt


def batch():
    """Three mappings with randomized phases (the hard case: the runs
    actually consume the seed) plus one deterministic mapping."""
    unsync = didt(sync=False)
    return (
        [
            [unsync] * 6,
            [unsync] * 3 + [idle_program(13.5)] * 3,
            [didt(sync=True)] * 6,
        ],
        ["u6", "u3", "s6"],
    )


def test_serial_and_process_runs_are_bit_identical(chip):
    options = RunOptions(segments=2, base_samples=1024)
    mappings, tags = batch()

    serial = SimulationSession(
        chip, options,
        cache=ResultCache(telemetry=Telemetry()),
        executor="serial", telemetry=Telemetry(),
    )
    process = SimulationSession(
        chip, options,
        cache=ResultCache(telemetry=Telemetry()),
        executor=ProcessExecutor(jobs=2), telemetry=Telemetry(),
    )

    serial_results = serial.run_many(mappings, tags)
    process_results = process.run_many(mappings, tags)

    assert process.telemetry.counter("engine.runs_executed") == len(mappings)
    for fast, slow in zip(process_results, serial_results):
        assert fast.p2p_by_core == slow.p2p_by_core
        assert fast.worst_vmin == slow.worst_vmin
        assert [m.coherent_delta_i for m in fast.measurements] == [
            m.coherent_delta_i for m in slow.measurements
        ]
