"""Fingerprint tests: canonical forms and run content addressing."""

import numpy as np

from repro.engine.fingerprint import (
    canonical,
    chip_fingerprint,
    content_key,
    is_deterministic_mapping,
    run_fingerprint,
)
from repro.machine.chip import Chip
from repro.machine.runner import RunOptions
from repro.machine.workload import idle_program

from .conftest import didt


class TestCanonical:
    def test_dicts_are_order_insensitive(self):
        assert canonical({"a": 1, "b": 2}) == canonical({"b": 2, "a": 1})

    def test_numpy_scalars_collapse_to_python(self):
        assert canonical(np.float64(1.5)) == canonical(1.5)
        assert canonical(np.int64(3)) == canonical(3)

    def test_dataclasses_expand_by_field(self):
        text = canonical(RunOptions(segments=3))
        assert text.startswith("RunOptions(")
        assert "segments=3" in text

    def test_content_key_is_stable_and_injective_on_parts(self):
        assert content_key("a", "b") == content_key("a", "b")
        assert content_key("a", "b") != content_key("ab")
        assert content_key("a", "b") != content_key("b", "a")


class TestMappingDeterminism:
    def test_synced_and_steady_mappings_are_deterministic(self):
        assert is_deterministic_mapping([didt(sync=True)] * 6)
        assert is_deterministic_mapping([idle_program(13.0)] * 6)
        assert is_deterministic_mapping([None] * 6)

    def test_unsynced_mapping_is_not(self):
        assert not is_deterministic_mapping(
            [didt(sync=False)] + [None] * 5
        )


class TestRunFingerprint:
    def test_deterministic_runs_ignore_tag_and_seed(self):
        mapping = [didt(sync=True)] * 6
        a = run_fingerprint("chipfp", mapping, RunOptions(seed=0), "tag-a")
        b = run_fingerprint("chipfp", mapping, RunOptions(seed=99), "tag-b")
        assert a == b

    def test_randomized_runs_keyed_by_tag_and_seed(self):
        mapping = [didt(sync=False)] * 6
        base = run_fingerprint("chipfp", mapping, RunOptions(seed=0), "t")
        assert base != run_fingerprint(
            "chipfp", mapping, RunOptions(seed=1), "t"
        )
        assert base != run_fingerprint(
            "chipfp", mapping, RunOptions(seed=0), "u"
        )
        assert base == run_fingerprint(
            "chipfp", mapping, RunOptions(seed=0), "t"
        )

    def test_options_still_distinguish_runs(self):
        mapping = [didt(sync=True)] * 6
        assert run_fingerprint(
            "chipfp", mapping, RunOptions(segments=2), "t"
        ) != run_fingerprint("chipfp", mapping, RunOptions(segments=4), "t")

    def test_programs_distinguish_runs(self):
        a = run_fingerprint(
            "chipfp", [didt(i_high=32.0)] * 6, RunOptions(), "t"
        )
        b = run_fingerprint(
            "chipfp", [didt(i_high=30.0)] * 6, RunOptions(), "t"
        )
        assert a != b

    def test_chip_fingerprint_distinguishes_variation_draw(self, chip):
        other = Chip(chip.config, chip_id=chip.chip_id + 1)
        assert chip_fingerprint(chip) != chip_fingerprint(other)
        assert chip_fingerprint(chip) == chip_fingerprint(
            Chip(chip.config, chip_id=chip.chip_id)
        )
