"""Engine test fixtures: cheap programs and isolated sessions."""

from __future__ import annotations

import pytest

from repro.engine import ResultCache, SimulationSession
from repro.machine.runner import RunOptions
from repro.machine.workload import CurrentProgram, SyncSpec
from repro.obs import Telemetry


def didt(sync: bool = True, i_high: float = 32.0) -> CurrentProgram:
    """A resonant square-wave program (synchronized by default)."""
    return CurrentProgram(
        "m", i_low=14.0, i_high=i_high, freq_hz=2.6e6, rise_time=11e-9,
        sync=SyncSpec() if sync else None,
    )


@pytest.fixture()
def telemetry():
    return Telemetry()


@pytest.fixture()
def session(chip, telemetry):
    """An isolated session: private cache, private telemetry, serial
    executor, cheap options."""
    return SimulationSession(
        chip,
        RunOptions(segments=2, base_samples=1024),
        cache=ResultCache(telemetry=telemetry),
        executor="serial",
        telemetry=telemetry,
    )
