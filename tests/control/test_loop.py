"""Closed-loop harness unit tests (fake session; no engine)."""

from __future__ import annotations

import pytest

from repro.control.api import Controller
from repro.control.loop import ClosedLoopRun, loop_summary
from repro.engine.stepping import Actuation
from repro.measure.runit import RUnit, RUnitConfig

from .conftest import make_observation


class FakeChip:
    vnom = 1.0


class FakeSteppingSession:
    """Replays a prepared observation list, applying bias actuations
    the way the real session does (offset folded into the window)."""

    resolved_backend = "fake"
    chip = FakeChip()

    def __init__(self, windows):
        self._windows = list(windows)
        self._cursor = 0
        self.applied: list[Actuation | None] = []

    @property
    def done(self):
        return self._cursor >= len(self._windows)

    def step(self, actuation=None):
        self.applied.append(actuation)
        window = self._windows[self._cursor]
        self._cursor += 1
        return window


class Pulse(Controller):
    kind = "pulse"

    def __init__(self, at, steps):
        self.at = at
        self.steps = steps

    def observe(self, window):
        if window.index + 1 == self.at:
            return Actuation(bias_steps=self.steps)
        return None

    def summary(self):
        return {"kind": self.kind}


class TestLoopSummary:
    def test_empty_loop(self):
        summary = loop_summary([], 1.0)
        assert summary["windows"] == 0
        assert summary["droop_v"] == 0.0
        assert summary["final_bias"] == 1.0

    def test_metrics(self):
        observations = [
            make_observation(0),
            make_observation(1, bias=0.95, worst=0.9),
            make_observation(2, bias=0.95, droop_events=3),
        ]
        summary = loop_summary(observations, 1.0, violations=1,
                               violation_windows=[1])
        assert summary["windows"] == 3
        assert summary["droop_v"] == pytest.approx(0.1)
        assert summary["overshoot_v"] == pytest.approx(0.02)
        # Bias changed entering window 1, then held: settling there.
        assert summary["settling_window"] == 1
        assert summary["transitions"] == 1
        assert summary["min_bias"] == 0.95
        assert summary["final_bias"] == 0.95
        assert summary["droop_events"] == 3
        assert summary["violations"] == 1
        assert summary["violation_windows"] == [1]


class TestClosedLoopRun:
    def test_one_window_actuation_latency(self):
        session = FakeSteppingSession(
            [make_observation(i) for i in range(4)]
        )
        loop = ClosedLoopRun(session, Pulse(at=2, steps=-4))
        loop.run()
        # The controller's answer to window 1 lands before window 2.
        assert session.applied[0] is None  # nothing primed
        assert session.applied[1] is None
        assert session.applied[2].bias_steps == -4
        assert session.applied[3] is None

    def test_runit_violations_accumulate(self):
        config = RUnitConfig()
        fail = config.v_fail_frac * 1.0
        session = FakeSteppingSession([
            make_observation(0),
            make_observation(1, worst=fail - 0.01),
            make_observation(2, worst=fail - 0.02),
        ])
        loop = ClosedLoopRun(
            session, Pulse(at=99, steps=0), runit=RUnit(config, 1.0)
        )
        summary = loop.run()
        assert summary["violations"] == 2
        assert summary["violation_windows"] == [1, 2]
        assert summary["controller"] == {"kind": "pulse"}
        assert summary["backend"] == "fake"

    def test_summary_before_completion_reflects_progress(self):
        session = FakeSteppingSession(
            [make_observation(i) for i in range(3)]
        )
        loop = ClosedLoopRun(session, Pulse(at=99, steps=0))
        loop.step()
        assert loop.summary()["windows"] == 1
        loop.run()
        assert loop.summary()["windows"] == 3
