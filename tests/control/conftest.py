"""Control subsystem fixtures: a cheap resonant stepping mapping and
synthetic window observations for controller unit tests."""

from __future__ import annotations

import pytest

from repro.engine.stepping import WindowObservation
from repro.machine.runner import RunOptions
from repro.machine.workload import CurrentProgram, SyncSpec


def control_program(i_high: float = 20.0) -> CurrentProgram:
    """A moderate synchronized resonant stressmark: loud enough to
    droop visibly, quiet enough that the nominal supply stays above
    the R-Unit's v_fail (so violations mark *actuation*, not the
    stimulus itself)."""
    return CurrentProgram(
        "ctl",
        i_low=14.0,
        i_high=i_high,
        freq_hz=2.6e6,
        rise_time=11e-9,
        sync=SyncSpec(),
    )


@pytest.fixture(scope="module")
def loop_mapping():
    return [control_program()] * 6


@pytest.fixture(scope="module")
def loop_options():
    return RunOptions(segments=2, base_samples=512)


def make_observation(
    index: int = 0,
    *,
    vnom: float = 1.0,
    bias: float = 1.0,
    v_mean=None,
    v_min=None,
    v_max=None,
    worst: float | None = None,
    active=tuple(range(6)),
    droop_events: int = 0,
    n_cores: int = 6,
) -> WindowObservation:
    """A synthetic observation with sensible defaults (all cores busy
    at *bias*·*vnom* with a ±20 mV ripple)."""
    v_mean = tuple(v_mean if v_mean is not None else [vnom * bias] * n_cores)
    v_min = tuple(v_min if v_min is not None else [v - 0.02 for v in v_mean])
    v_max = tuple(v_max if v_max is not None else [v + 0.02 for v in v_mean])
    return WindowObservation(
        index=index,
        segment=0,
        window=index,
        t_start=index * 1e-6,
        t_end=(index + 1) * 1e-6,
        n_samples=64,
        supply_bias=bias,
        v_min=v_min,
        v_mean=v_mean,
        v_max=v_max,
        worst_vmin=worst if worst is not None else min(v_min),
        active_cores=tuple(active),
        utilization=len(active) / n_cores,
        droop_events=droop_events,
        coherent=(0.0,) * n_cores,
    )
