"""Property: every window partition is bit-identical to the monolithic
solve — on both backends, and under injected transient faults with
retry (the satellite acceptance property)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.study import results_identical
from repro.engine import SimulationSession
from repro.engine.cache import ResultCache
from repro.engine.resilience import RetryPolicy
from repro.engine.stepping import SteppingSession
from repro.errors import ExecutionError
from repro.faults import FaultPlan, reset_fault_memo


@pytest.fixture(scope="module")
def baselines(chip, loop_mapping, loop_options):
    """The monolithic result per backend (tolerance-zero targets)."""
    return {
        backend: SimulationSession(
            chip,
            loop_options,
            cache=ResultCache(cache_dir=None),
            backend=backend,
        ).run(loop_mapping, run_tag="control")
        for backend in ("reference", "batched")
    }


@settings(max_examples=10, deadline=None)
@given(
    windows=st.integers(min_value=1, max_value=11),
    chunk=st.integers(min_value=1, max_value=5),
    backend=st.sampled_from(("reference", "batched")),
)
def test_any_partition_is_bit_identical(
    chip, loop_mapping, loop_options, baselines, windows, chunk, backend
):
    stepping = SteppingSession(
        chip,
        loop_mapping,
        loop_options,
        windows_per_segment=windows,
        backend=backend,
    )
    # Step in uneven chunks: continuation must not care how the caller
    # batches its windows.
    while not stepping.done:
        for _ in range(chunk):
            if stepping.done:
                break
            stepping.step()
    assert len(stepping.observations) == stepping.n_windows
    assert results_identical(stepping.result(), baselines[backend])


@settings(max_examples=5, deadline=None)
@given(windows=st.integers(min_value=2, max_value=9))
def test_partition_under_transient_faults_with_retry(
    chip, loop_mapping, loop_options, baselines, windows
):
    """Every cold window solve takes one injected transient fault; the
    retry policy absorbs them all and the result is still exact."""
    reset_fault_memo()
    stepping = SteppingSession(
        chip,
        loop_mapping,
        loop_options,
        windows_per_segment=windows,
        faults=FaultPlan(seed=3, exception_rate=1.0),
        retry=RetryPolicy(max_retries=2),
    )
    stepping.run_to_completion()
    assert results_identical(
        stepping.result(), baselines[stepping.resolved_backend]
    )


def test_permanent_fault_surfaces_as_execution_error(
    chip, loop_mapping, loop_options
):
    reset_fault_memo()
    stepping = SteppingSession(
        chip,
        loop_mapping,
        loop_options,
        windows_per_segment=3,
        faults=FaultPlan(seed=3, exception_rate=1.0, transient=False),
        retry=RetryPolicy(max_retries=1),
    )
    with pytest.raises(ExecutionError):
        stepping.run_to_completion()
