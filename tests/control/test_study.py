"""Study drivers: gain sweep and attack-surface heatmap, plus the
three-path identity of a sweep point against a hand-driven loop."""

from __future__ import annotations

import pytest

from repro.control.controllers import IntegralPowerController
from repro.control.loop import ClosedLoopRun
from repro.control.study import (
    CONTROL_RUN_TAG,
    attack_surface,
    gain_sweep,
    plan_control_experiment,
)
from repro.engine import SimulationSession
from repro.engine.cache import ResultCache
from repro.engine.stepping import SteppingSession
from repro.measure.runit import RUnit, RUnitConfig


@pytest.fixture(scope="module")
def baseline(chip, loop_mapping, loop_options):
    session = SimulationSession(
        chip, loop_options, cache=ResultCache(cache_dir=None)
    )
    return session.run(loop_mapping, run_tag=CONTROL_RUN_TAG)


@pytest.fixture(scope="module")
def sweep(chip, loop_mapping, loop_options, baseline):
    return gain_sweep(
        chip,
        loop_mapping,
        loop_options,
        gains=(0.05, 0.5),
        windows_per_segment=4,
        baseline=baseline,
    )


class TestGainSweep:
    def test_structure_and_equivalence(self, sweep):
        assert sweep["study"] == "gain_sweep"
        assert sweep["run_tag"] == CONTROL_RUN_TAG
        assert sweep["stepping_equivalent"] is True
        assert [p["gain"] for p in sweep["points"]] == [0.05, 0.5]
        for point in sweep["points"]:
            assert point["windows"] == sweep["windows"]
            assert point["controller"]["kind"] == "integral"

    def test_higher_gain_moves_bias_at_least_as_fast(self, sweep):
        slow, fast = sweep["points"]
        assert fast["settling_window"] <= slow["settling_window"]
        assert fast["min_bias"] <= slow["min_bias"]

    def test_point_matches_hand_driven_loop(
        self, chip, loop_mapping, loop_options, sweep
    ):
        """Three-path identity: driving the loop by hand must reproduce
        the study's sweep point exactly (the serve path is pinned the
        same way in tests/serve)."""
        stepping = SteppingSession(
            chip,
            loop_mapping,
            loop_options,
            run_tag=CONTROL_RUN_TAG,
            windows_per_segment=4,
        )
        loop = ClosedLoopRun(
            stepping,
            IntegralPowerController(chip.vnom, setpoint=0.85, gain=0.5),
            runit=RUnit(RUnitConfig(), chip.vnom),
        )
        summary = loop.run()
        summary["gain"] = 0.5
        assert summary == sweep["points"][1]


class TestAttackSurface:
    @pytest.fixture(scope="class")
    def surface(self, chip, loop_mapping, loop_options, baseline):
        return attack_surface(
            chip,
            loop_mapping,
            loop_options,
            depths=(5, 30),
            durations=(1, 2),
            windows_per_segment=4,
            baseline=baseline,
        )

    def test_structure_and_equivalence(self, surface):
        assert surface["study"] == "attack_surface"
        assert surface["stepping_equivalent"] is True
        assert 0 <= surface["stress_window"] < surface["windows"]
        # 2 depths x 2 durations x up to 2 alignments.
        assert len(surface["cells"]) >= 4

    def test_deep_attack_violates_where_shallow_does_not(self, surface):
        by_depth = {}
        for cell in surface["cells"]:
            if cell["alignment"] == "aligned":
                by_depth.setdefault(cell["depth_steps"], 0)
                by_depth[cell["depth_steps"]] += cell["violations"]
        assert by_depth[30] > 0
        assert by_depth[30] >= by_depth[5]

    def test_frontier_reports_shallowest_violating_depth(self, surface):
        aligned = surface["frontier"]["aligned"]
        for duration, depth in aligned.items():
            if depth is None:
                continue
            hits = [
                c
                for c in surface["cells"]
                if c["alignment"] == "aligned"
                and c["duration_windows"] == int(duration)
                and c["violations"] > 0
            ]
            assert depth == min(c["depth_steps"] for c in hits)


def test_plan_control_experiment_declares_one_tagged_run(
    chip, loop_mapping, loop_options
):
    plan = plan_control_experiment(chip, loop_mapping, loop_options)
    assert len(plan.runs) == 1
    assert plan.runs[0].tag == CONTROL_RUN_TAG
