"""Controller unit tests over synthetic window observations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.guardband import GuardbandPolicy
from repro.control.controllers import (
    BIAS_STEP_MAX,
    BIAS_STEP_MIN,
    AdversarialUndervolter,
    DynamicGuardbandController,
    IntegralPowerController,
    controller_from_spec,
)
from repro.errors import ControlError
from repro.machine.system import VOLTAGE_STEP

from .conftest import make_observation


class TestIntegralPowerController:
    def test_lowers_bias_when_power_exceeds_setpoint(self):
        controller = IntegralPowerController(1.0, setpoint=0.5, gain=0.5)
        # All cores busy at nominal: proxy = 1.0 > setpoint.
        actuation = controller.observe(make_observation())
        assert actuation is not None
        assert actuation.bias_steps < 0

    def test_silent_when_quantized_command_unchanged(self):
        controller = IntegralPowerController(1.0, setpoint=0.85, gain=1e-4)
        # A tiny gain cannot move the command a whole 0.5 % step.
        assert controller.observe(make_observation()) is None

    def test_command_clamps_to_service_range(self):
        controller = IntegralPowerController(1.0, setpoint=0.01, gain=100.0)
        window = make_observation()
        actuation = controller.observe(window)
        assert actuation.bias_steps == BIAS_STEP_MIN
        # Anti-windup: the integrator must not keep diving past the
        # actuator range, so recovery starts immediately.
        controller.observe(window)
        assert controller.summary()["final_steps"] >= BIAS_STEP_MIN

    def test_summary_tracks_errors(self):
        controller = IntegralPowerController(1.0, setpoint=0.5, gain=0.1)
        controller.observe(make_observation())
        summary = controller.summary()
        assert summary["kind"] == "integral"
        assert summary["mean_abs_error"] > 0
        assert summary["final_error"] == pytest.approx(0.5 - 1.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ControlError):
            IntegralPowerController(0.0)
        with pytest.raises(ControlError):
            IntegralPowerController(1.0, setpoint=-1.0)
        with pytest.raises(ControlError):
            IntegralPowerController(1.0, gain=-0.1)


def margin_policy() -> GuardbandPolicy:
    margins = {k: 0.01 + 0.01 * k for k in range(7)}
    return GuardbandPolicy(
        margin_by_active_cores=margins, static_margin=margins[6]
    )


class TestDynamicGuardbandController:
    def test_quantization_matches_offline_controller(self, chip):
        from repro.mitigation.guardband import GuardbandController

        policy = margin_policy()
        online = DynamicGuardbandController(policy, slack=0.0025)
        offline = GuardbandController(chip, policy, slack=0.0025)
        for k in range(7):
            assert 1.0 + online.steps_for(k) * VOLTAGE_STEP == (
                pytest.approx(offline.bias_for(k))
            )

    def test_full_load_keeps_nominal(self):
        controller = DynamicGuardbandController(margin_policy())
        assert controller.observe(make_observation()) is None
        assert controller.steps_for(6) == 0

    def test_idle_window_undervolts_and_transitions_count(self):
        controller = DynamicGuardbandController(margin_policy())
        idle = make_observation(active=(0,))
        actuation = controller.observe(idle)
        assert actuation is not None and actuation.bias_steps < 0
        assert controller.observe(idle) is None  # steady: no re-issue
        busy = make_observation(index=1)
        assert controller.observe(busy).bias_steps == 0
        summary = controller.summary()
        assert summary["transitions"] == 2
        # The programmed margin never dips below the schedule's need.
        assert summary["min_headroom"] >= 0.0

    def test_negative_slack_rejected(self):
        with pytest.raises(ControlError):
            DynamicGuardbandController(margin_policy(), slack=-1e-3)


class TestAdversarialUndervolter:
    def test_pulse_shape(self):
        agent = AdversarialUndervolter(
            depth_steps=10, duration_windows=2, start_window=1
        )
        assert agent.prime() is None  # attack not at window 0
        onset = agent.observe(make_observation(index=0))
        assert onset.bias_steps == -10
        assert agent.observe(make_observation(index=1)) is None  # held
        release = agent.observe(make_observation(index=2))
        assert release.bias_steps == 0

    def test_window_zero_attack_primes(self):
        agent = AdversarialUndervolter(depth_steps=5, duration_windows=1)
        assert agent.prime().bias_steps == -5

    def test_parameter_validation(self):
        with pytest.raises(ControlError):
            AdversarialUndervolter(depth_steps=-1, duration_windows=1)
        with pytest.raises(ControlError):
            AdversarialUndervolter(
                depth_steps=-BIAS_STEP_MIN + 1, duration_windows=1
            )
        with pytest.raises(ControlError):
            AdversarialUndervolter(depth_steps=5, duration_windows=0)
        with pytest.raises(ControlError):
            AdversarialUndervolter(
                depth_steps=5, duration_windows=1, start_window=-1
            )


class TestControllerFromSpec:
    def test_integral(self, chip):
        controller = controller_from_spec(
            {"kind": "integral", "gain": 0.3, "setpoint": 0.7}, chip
        )
        assert controller.kind == "integral"
        assert controller.gain == 0.3
        assert controller.setpoint == 0.7

    def test_guardband_with_inline_margins(self, chip):
        controller = controller_from_spec(
            {
                "kind": "guardband",
                "margins": {"0": 0.01, "3": 0.03, "6": 0.07},
            },
            chip,
        )
        assert controller.kind == "guardband"
        assert controller.policy.static_margin == 0.07

    def test_adversarial(self, chip):
        controller = controller_from_spec(
            {"kind": "adversarial", "depth_steps": 12}, chip
        )
        assert controller.kind == "adversarial"
        assert controller.depth_steps == 12

    def test_malformed_specs_rejected(self, chip):
        with pytest.raises(ControlError):
            controller_from_spec(None, chip)
        with pytest.raises(ControlError):
            controller_from_spec({"kind": "pid"}, chip)
        with pytest.raises(ControlError):
            controller_from_spec({"kind": "guardband"}, chip)

    def test_bias_step_bounds_are_consistent(self):
        assert BIAS_STEP_MIN < 0 < BIAS_STEP_MAX
