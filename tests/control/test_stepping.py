"""Stepping engine: exact continuation and actuation semantics."""

from __future__ import annotations

import pytest

from repro.control.study import results_identical
from repro.engine import SimulationSession
from repro.engine.cache import ResultCache
from repro.engine.stepping import Actuation, SteppingSession
from repro.errors import ConfigError, ControlError
from repro.machine.system import VOLTAGE_STEP

BACKENDS = ("reference", "batched")


def monolithic(chip, mapping, options, backend):
    session = SimulationSession(
        chip, options, cache=ResultCache(cache_dir=None), backend=backend
    )
    return session.run(mapping, run_tag="control")


class TestExactContinuation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stepping_equals_monolithic(
        self, chip, loop_mapping, loop_options, backend
    ):
        stepping = SteppingSession(
            chip,
            loop_mapping,
            loop_options,
            windows_per_segment=5,
            backend=backend,
        )
        assert stepping.resolved_backend == backend
        observations = stepping.run_to_completion()
        assert len(observations) == stepping.n_windows
        baseline = monolithic(chip, loop_mapping, loop_options, backend)
        assert results_identical(stepping.result(), baseline)

    def test_rewind_replays_bitwise(self, chip, loop_mapping, loop_options):
        stepping = SteppingSession(
            chip, loop_mapping, loop_options, windows_per_segment=4
        )
        first = stepping.run_to_completion()
        stepping.rewind()
        second = stepping.run_to_completion()
        assert first == second

    def test_windows_tile_each_segment(
        self, chip, loop_mapping, loop_options
    ):
        stepping = SteppingSession(
            chip, loop_mapping, loop_options, windows_per_segment=6
        )
        observations = stepping.run_to_completion()
        assert [obs.index for obs in observations] == list(
            range(stepping.n_windows)
        )
        per_segment: dict[int, int] = {}
        for obs in observations:
            assert obs.n_samples > 0
            assert obs.t_start <= obs.t_end
            per_segment[obs.segment] = (
                per_segment.get(obs.segment, 0) + obs.n_samples
            )
        for seg, segment in enumerate(stepping.batch.segments):
            assert per_segment[seg] == segment.times.size

    def test_step_past_completion_raises(
        self, chip, loop_mapping, loop_options
    ):
        stepping = SteppingSession(
            chip, loop_mapping, loop_options, windows_per_segment=2
        )
        stepping.run_to_completion()
        with pytest.raises(ControlError):
            stepping.step()

    def test_invalid_window_count_rejected(
        self, chip, loop_mapping, loop_options
    ):
        with pytest.raises(ConfigError):
            SteppingSession(
                chip, loop_mapping, loop_options, windows_per_segment=0
            )


class TestActuation:
    def test_bias_is_a_pure_offset(self, chip, loop_mapping, loop_options):
        plain = SteppingSession(
            chip, loop_mapping, loop_options, windows_per_segment=4
        )
        biased = SteppingSession(
            chip, loop_mapping, loop_options, windows_per_segment=4
        )
        steps = -10
        offset = steps * VOLTAGE_STEP * chip.vnom
        reference = plain.run_to_completion()
        first = biased.step(Actuation(bias_steps=steps))
        assert first.supply_bias == 1.0 + steps * VOLTAGE_STEP
        assert first.v_min == tuple(
            v + offset for v in reference[0].v_min
        )
        assert first.v_max == tuple(
            v + offset for v in reference[0].v_max
        )

    def test_bias_beyond_service_range_rejected(
        self, chip, loop_mapping, loop_options
    ):
        stepping = SteppingSession(
            chip, loop_mapping, loop_options, windows_per_segment=2
        )
        with pytest.raises(ConfigError):
            stepping.step(Actuation(bias_steps=-100))

    def test_throttle_shrinks_later_droop(
        self, chip, loop_mapping, loop_options
    ):
        plain = SteppingSession(
            chip, loop_mapping, loop_options, windows_per_segment=4
        )
        throttled = SteppingSession(
            chip, loop_mapping, loop_options, windows_per_segment=4
        )
        reference = plain.run_to_completion()
        throttled.step(Actuation(throttle=0.2))
        rest = throttled.run_to_completion()
        assert min(obs.worst_vmin for obs in rest) > min(
            obs.worst_vmin for obs in reference[1:]
        )

    def test_rewind_after_throttle_restores_equivalence(
        self, chip, loop_mapping, loop_options
    ):
        stepping = SteppingSession(
            chip, loop_mapping, loop_options, windows_per_segment=4
        )
        stepping.step(Actuation(throttle={0: 0.5, 3: 0.25}))
        stepping.run_to_completion()
        stepping.rewind()
        stepping.run_to_completion()
        baseline = monolithic(
            chip, loop_mapping, loop_options, stepping.resolved_backend
        )
        assert results_identical(stepping.result(), baseline)

    def test_negative_throttle_rejected(
        self, chip, loop_mapping, loop_options
    ):
        stepping = SteppingSession(
            chip, loop_mapping, loop_options, windows_per_segment=2
        )
        with pytest.raises(ControlError):
            stepping.step(Actuation(throttle=-0.5))
