"""Declarative chip specs: validation, serialization round-trips, and
the fingerprint-neutrality regression constant.

The pinned digest is the load-bearing guarantee of the chip layer: the
default spec must fingerprint to exactly the ambient reference chip,
in this process and in any other, or every pre-family cache key, plan
fingerprint and serve wire fingerprint silently changes.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.chips import ChipSpec, reference_spec
from repro.chips.scaling import (
    REFERENCE_NODE,
    SCALING_MODELS,
    TECH_NODES,
    energy_factor,
    freq_factor,
    vdd_factor,
)
from repro.engine.fingerprint import canonical, chip_fingerprint, content_key
from repro.errors import ConfigError
from repro.machine.chip import ChipConfig, reference_chip

#: The default chip's fingerprint digest — a cross-PR regression
#: constant.  If this assertion ever fails, the change broke
#: default-chip cache-key neutrality (every cache entry, plan
#: fingerprint and serve wire fingerprint written before it is
#: orphaned).  Do not update the constant without that intent.
REFERENCE_DIGEST = (
    "8801bcaeb928b786f823559e2ec66fa139bd02a555e29c86bb6a400b47e9e78a"
)


class TestValidation:
    def test_defaults_are_valid(self):
        spec = ChipSpec()
        assert spec.n_cores == 6
        assert spec.tech_node == REFERENCE_NODE

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"n_cores": 1},
            {"n_cores": 33},
            {"n_cores": 6.0},
            {"n_cores": True},
            {"decap_scale": 0.0},
            {"decap_scale": -1.0},
            {"decap_scale": 11.0},
            {"package_l_scale": 0.0},
            {"package_r_scale": float("nan")},
            {"tech_node": 28},
            {"scaling_model": "magic"},
            {"seed": -1},
            {"chip_id": -1},
            {"chip_id": 0.5},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ConfigError):
            ChipSpec(**kwargs)

    def test_nan_scale_rejected(self):
        # NaN fails the range check (not 0 < nan), never the type check.
        with pytest.raises(ConfigError):
            ChipSpec(decap_scale=float("nan"))


class TestCompile:
    def test_default_spec_compiles_to_default_config(self):
        """The neutrality guarantee at the config layer: the compiled
        default is canonically byte-identical to ``ChipConfig()``."""
        assert canonical(ChipSpec().compile()) == canonical(ChipConfig())

    def test_scale_knobs_are_multipliers(self):
        base = ChipSpec().compile()
        scaled = ChipSpec(decap_scale=0.5, package_l_scale=2.0).compile()
        assert scaled.pdn.c_core == base.pdn.c_core * 0.5
        assert scaled.pdn.c_l3 == base.pdn.c_l3 * 0.5
        assert scaled.pdn.l_mb == base.pdn.l_mb * 2.0
        assert scaled.pdn.r_mb == base.pdn.r_mb  # untouched knob

    def test_tech_node_scales_vdd_clock_energy(self):
        base = ChipSpec().compile()
        shrunk = ChipSpec(tech_node=22).compile()
        assert shrunk.pdn.vnom == base.pdn.vnom * vdd_factor(22)
        assert shrunk.core.clock_hz == base.core.clock_hz * freq_factor(22)
        assert shrunk.core.static_power_w == (
            base.core.static_power_w * energy_factor(22)
        )

    def test_reference_node_factors_are_exactly_one(self):
        for model in SCALING_MODELS:
            assert vdd_factor(REFERENCE_NODE, model) == 1.0
            assert freq_factor(REFERENCE_NODE, model) == 1.0
            assert energy_factor(REFERENCE_NODE, model) == 1.0

    def test_unknown_node_and_model_rejected(self):
        with pytest.raises(ConfigError):
            vdd_factor(28)
        with pytest.raises(ConfigError):
            vdd_factor(REFERENCE_NODE, "magic")


class TestFingerprint:
    def test_pinned_reference_digest(self):
        assert reference_spec().fingerprint() == REFERENCE_DIGEST

    def test_matches_built_chip_fingerprint(self):
        spec = ChipSpec(n_cores=4)
        assert content_key(spec.identity()) == spec.fingerprint()
        assert spec.identity() == chip_fingerprint(spec.build())

    def test_default_spec_names_the_ambient_reference_chip(self):
        assert reference_spec().identity() == chip_fingerprint(
            reference_chip()
        )

    def test_name_is_not_part_of_the_fingerprint(self):
        assert (
            ChipSpec(name="a").fingerprint()
            == ChipSpec(name="b").fingerprint()
        )

    def test_every_knob_is_part_of_the_fingerprint(self):
        base = ChipSpec().fingerprint()
        for override in (
            {"n_cores": 8},
            {"decap_scale": 0.5},
            {"package_l_scale": 1.5},
            {"package_r_scale": 1.5},
            {"tech_node": 22},
            {"tech_node": 22, "scaling_model": "cons"},
            {"seed": 18},
            {"chip_id": 1},
        ):
            assert ChipSpec(**override).fingerprint() != base, override

    def test_cross_process_stability(self):
        """The spec → fingerprint map must be identical in a fresh
        interpreter: fleets, shards and serve rosters in different
        processes key the same silicon by the same digest."""
        src = Path(repro.__file__).resolve().parents[1]
        script = (
            "import json\n"
            "from repro.chips import ChipSpec, reference_spec\n"
            "print(json.dumps([\n"
            "    reference_spec().fingerprint(),\n"
            "    ChipSpec(n_cores=8, decap_scale=0.5,\n"
            "             tech_node=22).fingerprint(),\n"
            "]))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            env={**os.environ, "PYTHONPATH": str(src)},
            capture_output=True,
            text=True,
            check=True,
        )
        remote = json.loads(out.stdout)
        assert remote[0] == REFERENCE_DIGEST
        assert remote[1] == ChipSpec(
            n_cores=8, decap_scale=0.5, tech_node=22
        ).fingerprint()


class TestSerialization:
    def test_round_trip(self):
        spec = ChipSpec(name="fam/m", n_cores=10, decap_scale=0.75,
                        tech_node=16, scaling_model="cons")
        assert ChipSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError):
            ChipSpec.from_dict({"n_cores": 6, "decap": 0.5})

    def test_from_dict_rejects_non_dict(self):
        with pytest.raises(ConfigError):
            ChipSpec.from_dict([("n_cores", 6)])

    def test_dict_is_json_safe(self):
        payload = json.dumps(ChipSpec(n_cores=8).to_dict())
        assert ChipSpec.from_dict(json.loads(payload)) == ChipSpec(
            n_cores=8
        )


specs = st.builds(
    ChipSpec,
    name=st.text(min_size=1, max_size=12),
    n_cores=st.integers(min_value=2, max_value=32),
    decap_scale=st.floats(min_value=0.01, max_value=10.0,
                          allow_nan=False),
    package_l_scale=st.floats(min_value=0.01, max_value=10.0,
                              allow_nan=False),
    package_r_scale=st.floats(min_value=0.01, max_value=10.0,
                              allow_nan=False),
    tech_node=st.sampled_from(TECH_NODES),
    scaling_model=st.sampled_from(SCALING_MODELS),
    seed=st.integers(min_value=0, max_value=2**31),
    chip_id=st.integers(min_value=0, max_value=64),
)


@settings(max_examples=60, deadline=None)
@given(spec=specs)
def test_round_trip_preserves_identity(spec):
    """Any valid spec survives dict round-tripping with its equality
    AND its fingerprint intact (floats included — ``repr`` canonical
    form is exact)."""
    restored = ChipSpec.from_dict(
        json.loads(json.dumps(spec.to_dict()))
    )
    assert restored == spec
    assert restored.fingerprint() == spec.fingerprint()
