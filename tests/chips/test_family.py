"""Chip families: declarative sweep expansion, member naming and the
builtin registry."""

from __future__ import annotations

import pytest

from repro.chips import (
    FAMILIES,
    ChipFamily,
    ChipSpec,
    build_chip,
    get_family,
    list_families,
    reference_spec,
)
from repro.errors import ConfigError


class TestRegistry:
    def test_builtin_families(self):
        assert set(FAMILIES) >= {
            "quick", "cores", "decap", "nodes", "cores-decap"
        }
        assert list_families() == list(FAMILIES.values())

    def test_get_family(self):
        assert get_family("quick") is FAMILIES["quick"]
        with pytest.raises(ConfigError, match="unknown chip family"):
            get_family("nope")

    def test_quick_family_contains_the_reference_chip(self):
        """The CI family's middle member is the neutrality canary: the
        same silicon as the default spec."""
        member = get_family("quick").member("cores6")
        assert member.fingerprint() == reference_spec().fingerprint()

    def test_builtin_members_are_all_valid_and_distinct(self):
        for family in list_families():
            members = family.members()
            assert len(members) == len(family)
            digests = {spec.fingerprint() for spec in members}
            assert len(digests) == len(members), family.name


class TestExpansion:
    def test_member_names_are_deterministic(self):
        assert [spec.name for spec in get_family("quick").members()] == [
            "quick/cores4", "quick/cores6", "quick/cores8",
        ]

    def test_cartesian_product_order(self):
        family = get_family("cores-decap")
        assert [spec.name for spec in family.members()] == [
            "cores-decap/cores4-decap0.5",
            "cores-decap/cores4-decap1",
            "cores-decap/cores6-decap0.5",
            "cores-decap/cores6-decap1",
            "cores-decap/cores8-decap0.5",
            "cores-decap/cores8-decap1",
        ]
        assert len(family) == 6

    def test_axes_override_the_base_spec(self):
        family = ChipFamily(
            name="f", description="d",
            axes=(("decap_scale", (0.5,)),),
            base=ChipSpec(tech_node=22),
        )
        (member,) = family.members()
        assert member.decap_scale == 0.5
        assert member.tech_node == 22

    def test_member_lookup_full_and_label(self):
        family = get_family("quick")
        assert family.member("quick/cores8") == family.member("cores8")
        with pytest.raises(ConfigError, match="no member"):
            family.member("cores5")


class TestValidation:
    def test_needs_name_and_axes(self):
        with pytest.raises(ConfigError):
            ChipFamily(name="", description="d", axes=(("n_cores", (4,)),))
        with pytest.raises(ConfigError):
            ChipFamily(name="f", description="d", axes=())

    def test_rejects_unsweepable_field(self):
        with pytest.raises(ConfigError, match="cannot sweep"):
            ChipFamily(name="f", description="d", axes=(("name", ("a",)),))

    def test_rejects_duplicate_axis(self):
        with pytest.raises(ConfigError, match="duplicate axis"):
            ChipFamily(
                name="f", description="d",
                axes=(("n_cores", (4,)), ("n_cores", (6,))),
            )

    def test_rejects_empty_or_repeated_values(self):
        with pytest.raises(ConfigError, match="no values"):
            ChipFamily(name="f", description="d", axes=(("n_cores", ()),))
        with pytest.raises(ConfigError, match="repeats values"):
            ChipFamily(
                name="f", description="d", axes=(("n_cores", (4, 4)),)
            )


class TestBuildChip:
    def test_memoized_per_spec(self):
        spec = get_family("quick").member("cores4")
        chip = build_chip(spec)
        assert build_chip(spec) is chip
        assert chip.config.pdn.n_cores == 4

    def test_name_does_not_split_the_memo(self):
        """Two specs naming the same silicon share one build — the memo
        keys on spec equality, and name is part of equality, so this
        documents the (acceptable) limit: same name → same object."""
        spec = get_family("quick").member("cores4")
        same = get_family("quick").member("cores4")
        assert build_chip(same) is build_chip(spec)
