"""Serve test fixtures: isolated services over cheap run options."""

from __future__ import annotations

import threading

import pytest

from repro.engine.cache import ResultCache
from repro.machine.runner import RunOptions
from repro.obs import Telemetry
from repro.serve import SimulationService


#: The canonical cheap request used across the serve tests.
def program_payload(i_high: float = 25.0, freq_hz: float = 9e7) -> dict:
    return {"i_low": 5.0, "i_high": i_high, "freq_hz": freq_hz}


def simulate_payload(i_high: float = 25.0, freq_hz: float = 9e7) -> dict:
    return {"op": "simulate", "mapping": [program_payload(i_high, freq_hz)]}


@pytest.fixture()
def cheap_options():
    """Very cheap runner options — serving tests measure the plumbing,
    not the PDN."""
    return RunOptions(segments=1, events_cap=40, base_samples=64)


@pytest.fixture()
def telemetry():
    return Telemetry()


@pytest.fixture()
def service(chip, cheap_options, telemetry):
    """An isolated started service: private cache/telemetry, serial
    executor."""
    svc = SimulationService(
        chip,
        cheap_options,
        cache=ResultCache(cache_dir=None, telemetry=telemetry),
        executor="serial",
        telemetry=telemetry,
    ).start()
    yield svc
    svc.stop()


class GatedService(SimulationService):
    """A service whose execution stage blocks on a gate — the seam the
    coalescing and backpressure tests use to hold requests in flight
    deterministically."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.gate = threading.Event()
        self.entered = threading.Event()

    def _execute_group(self, session, items):
        self.entered.set()
        assert self.gate.wait(30.0), "test forgot to open the gate"
        super()._execute_group(session, items)


@pytest.fixture()
def gated_service(chip, cheap_options, telemetry):
    svc = GatedService(
        chip,
        cheap_options,
        cache=ResultCache(cache_dir=None, telemetry=telemetry),
        executor="serial",
        telemetry=telemetry,
    ).start()
    yield svc
    svc.gate.set()  # never leave the executor thread wedged
    svc.stop()
