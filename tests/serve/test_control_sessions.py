"""Stateful ``session.*`` verbs: registry accounting, in-process verb
semantics (including the serve ≡ local-loop identity), and the real-TCP
round trip."""

from __future__ import annotations

import pytest

from repro.control.controllers import IntegralPowerController
from repro.control.loop import ClosedLoopRun
from repro.control.study import CONTROL_RUN_TAG
from repro.engine.cache import ResultCache
from repro.engine.stepping import SteppingSession
from repro.errors import ConfigError, ControlError
from repro.measure.runit import RUnit, RUnitConfig
from repro.serve import (
    ControlSessionRegistry,
    ServeClient,
    SimulationService,
    start_server,
)
from repro.serve.protocol import decode_request

from .conftest import program_payload

CONTROLLER = {"kind": "integral", "gain": 0.5, "setpoint": 0.85}


def open_payload(**overrides) -> dict:
    payload = {
        "op": "session.open",
        "mapping": [program_payload()],
        "controller": dict(CONTROLLER),
        "windows_per_segment": 4,
    }
    payload.update(overrides)
    return payload


class FakeStepping:
    def __init__(self):
        self.position = 2
        self.n_windows = 8
        self.done = False


class FakeLoop:
    def __init__(self):
        self.session = FakeStepping()
        self.violations = 1


class TestRegistry:
    def test_validates_construction(self):
        with pytest.raises(ConfigError):
            ControlSessionRegistry(max_sessions=0)
        with pytest.raises(ConfigError):
            ControlSessionRegistry(ttl_s=0.0)

    def test_capacity_and_serial_ids(self):
        registry = ControlSessionRegistry(max_sessions=2, ttl_s=10.0)
        first = registry.open(FakeLoop(), "a" * 40, "integral", now=0.0)
        second = registry.open(FakeLoop(), "b" * 40, "integral", now=0.0)
        assert first.session_id == "cs-000001"
        assert second.session_id == "cs-000002"
        assert registry.full
        with pytest.raises(ControlError):
            registry.open(FakeLoop(), "c" * 40, "integral", now=0.0)
        registry.close(first.session_id)
        # Ids are never recycled: a stale handle cannot alias a new loop.
        third = registry.open(FakeLoop(), "c" * 40, "integral", now=0.0)
        assert third.session_id == "cs-000003"

    def test_unknown_session_raises(self):
        registry = ControlSessionRegistry()
        with pytest.raises(ControlError):
            registry.get("cs-999999")
        with pytest.raises(ControlError):
            registry.close("cs-999999")

    def test_prune_expires_idle_sessions_only(self):
        registry = ControlSessionRegistry(max_sessions=4, ttl_s=5.0)
        stale = registry.open(FakeLoop(), "a" * 40, "integral", now=0.0)
        fresh = registry.open(FakeLoop(), "b" * 40, "integral", now=0.0)
        registry.get(fresh.session_id, now=4.0)  # touched: stays alive
        expired = registry.prune(now=6.0)
        assert [s.session_id for s in expired] == [stale.session_id]
        assert len(registry) == 1
        stats = registry.stats(now=6.0)
        assert stats["expired"] == 1 and stats["open"] == 1

    def test_stats_report_residency(self):
        registry = ControlSessionRegistry(max_sessions=3, ttl_s=100.0)
        session = registry.open(FakeLoop(), "f" * 40, "integral", now=10.0)
        registry.record_steps(session, 2)
        stats = registry.stats(now=13.0)
        assert stats["open"] == 1 and stats["capacity"] == 3
        assert stats["opened"] == 1 and stats["steps_served"] == 2
        (line,) = stats["residency"]
        assert line["session"] == session.session_id
        assert line["chip"] == "f" * 12
        assert line["position"] == 2 and line["windows"] == 8
        assert line["violations"] == 1
        assert line["age_s"] == 3.0


class TestServiceVerbs:
    def test_open_step_close_round_trip(self, service, telemetry):
        opened = service.handle(open_payload())
        assert opened["ok"] and opened["windows"] == 4
        assert opened["controller"] == "integral"
        session = opened["session"]

        stepped = service.handle(
            {"op": "session.step", "session": session, "steps": 3}
        )
        assert stepped["ok"] and stepped["position"] == 3
        assert not stepped["done"] and "summary" not in stepped
        assert len(stepped["observations"]) == 3
        first = stepped["observations"][0]
        assert first["index"] == 0 and first["n_samples"] > 0
        assert isinstance(first["v_min"], list)

        final = service.handle(
            {"op": "session.step", "session": session, "steps": "all"}
        )
        assert final["done"] and final["summary"]["windows"] == 4

        closed = service.handle({"op": "session.close", "session": session})
        assert closed["ok"] and closed["steps_served"] == 4
        assert closed["summary"] == final["summary"]
        assert telemetry.counter("serve.session.opened") == 1
        assert telemetry.counter("serve.session.steps") == 4
        assert telemetry.counter("serve.session.closed") == 1

    def test_serve_summary_matches_local_loop(
        self, service, chip, cheap_options
    ):
        """The acceptance identity: a serve-driven loop reports byte-
        identical summaries to the same loop driven in-process (and, via
        tests/control/test_study.py, to the gain-sweep study point)."""
        opened = service.handle(open_payload())
        reply = service.handle(
            {"op": "session.step", "session": opened["session"],
             "steps": "all"}
        )
        request = decode_request(
            open_payload(), cheap_options, n_cores=chip.n_cores
        )
        local = ClosedLoopRun(
            SteppingSession(
                chip,
                list(request.mapping),
                request.options,
                run_tag=CONTROL_RUN_TAG,
                windows_per_segment=4,
            ),
            IntegralPowerController(chip.vnom, setpoint=0.85, gain=0.5),
            runit=RUnit(RUnitConfig(), chip.vnom),
        )
        assert reply["summary"] == local.run()

    def test_bad_requests_are_rejected_not_fatal(self, service):
        bad_spec = service.handle(
            open_payload(controller={"kind": "pid"})
        )
        assert not bad_spec["ok"] and bad_spec["status"] == "bad-request"

        bad_windows = service.handle(open_payload(windows_per_segment=0))
        assert bad_windows["status"] == "bad-request"

        unknown = service.handle(
            {"op": "session.step", "session": "cs-424242", "steps": 1}
        )
        assert unknown["status"] == "bad-request"
        assert "unknown control session" in unknown["error"]

        opened = service.handle(open_payload())
        bad_steps = service.handle(
            {"op": "session.step", "session": opened["session"],
             "steps": -1}
        )
        assert bad_steps["status"] == "bad-request"
        # The service keeps serving after every rejection.
        assert service.handle({"op": "health"})["ok"]

    def test_capacity_answers_busy(self, chip, cheap_options, telemetry):
        service = SimulationService(
            chip,
            cheap_options,
            cache=ResultCache(cache_dir=None, telemetry=telemetry),
            executor="serial",
            telemetry=telemetry,
            max_sessions=1,
        ).start()
        try:
            assert service.handle(open_payload())["ok"]
            refused = service.handle(open_payload())
            assert not refused["ok"] and refused["status"] == "busy"
            assert "capacity" in refused["error"]
        finally:
            service.stop()

    def test_health_metrics_and_gauges_account_sessions(
        self, service, telemetry
    ):
        opened = service.handle(open_payload())
        service.handle(
            {"op": "session.step", "session": opened["session"], "steps": 2}
        )
        health = service.handle({"op": "health"})
        sessions = health["control_sessions"]
        assert sessions["open"] == 1 and sessions["opened"] == 1
        (line,) = sessions["residency"]
        assert line["session"] == opened["session"]
        assert line["position"] == 2 and line["steps_served"] == 2

        metrics = service.handle({"op": "metrics"})
        assert metrics["control_sessions"]["steps_served"] == 2

        gauges = service.gauges()
        assert gauges["serve.control.sessions.open"] == 1
        assert gauges["serve.control.steps.served"] == 2
        assert gauges["serve.control.sessions.capacity"] == 8


class TestOverTcp:
    def test_session_verbs_round_trip(self, chip, cheap_options, telemetry):
        service = SimulationService(
            chip,
            cheap_options,
            cache=ResultCache(cache_dir=None, telemetry=telemetry),
            executor="serial",
            telemetry=telemetry,
        )
        server, thread = start_server(service, port=0)
        try:
            with ServeClient(port=server.port) as client:
                opened = client.session_open(
                    [program_payload()],
                    dict(CONTROLLER),
                    windows_per_segment=4,
                )
                assert opened["ok"] and opened["windows"] == 4
                session = opened["session"]
                stepped = client.session_step(session, steps="all")
                assert stepped["done"]
                assert stepped["summary"]["controller"]["kind"] == "integral"
                closed = client.session_close(session)
                assert closed["steps_served"] == 4
                assert closed["summary"] == stepped["summary"]
                # The loop state is gone: stepping again is an error.
                stale = client.session_step(session, steps=1)
                assert stale["status"] == "bad-request"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(10.0)
            service.stop()
