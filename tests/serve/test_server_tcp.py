"""The TCP front end: framing, persistence, latency, shutdown."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.engine.cache import ResultCache
from repro.obs import Telemetry
from repro.serve import (
    NoiseServer,
    ServeClient,
    SimulationService,
    start_server,
)

from .conftest import program_payload


@pytest.fixture()
def endpoint(chip, cheap_options, telemetry):
    """A served TCP endpoint on an ephemeral port."""
    service = SimulationService(
        chip, cheap_options,
        cache=ResultCache(cache_dir=None, telemetry=telemetry),
        executor="serial", telemetry=telemetry,
    )
    server, thread = start_server(service, port=0)
    yield server, service
    server.shutdown()
    server.server_close()
    thread.join(10.0)
    service.stop()


def test_round_trip_and_persistent_connection(endpoint):
    server, _ = endpoint
    with ServeClient(port=server.port) as client:
        first = client.simulate([program_payload()])
        assert first["ok"] and first["tier"] == "executed"
        # Same socket, second request: hot replay.
        second = client.simulate([program_payload()])
        assert second["ok"] and second["tier"] == "hot"
        assert second["result"] == first["result"]
        health = client.health()
        assert health["ok"] and health["status"] == "ok"


def test_hot_tier_latency_under_50ms(endpoint):
    """Acceptance: a hot-tier query answers in under 50 ms (measured
    server-side — decode, lookup, encode; no engine involved)."""
    server, _ = endpoint
    with ServeClient(port=server.port) as client:
        client.simulate([program_payload()])  # warm the hot tier
        for _ in range(5):
            reply = client.simulate([program_payload()])
            assert reply["tier"] == "hot"
            assert reply["elapsed_ms"] < 50.0


def test_malformed_line_keeps_the_connection(endpoint):
    server, _ = endpoint
    with socket.create_connection(("127.0.0.1", server.port), 10) as raw:
        stream = raw.makefile("rwb")
        stream.write(b"this is not json\n")
        stream.flush()
        error_reply = stream.readline()
        assert b"bad-request" in error_reply
        # Connection survives: a well-formed request still answers.
        stream.write(b'{"op": "health"}\n')
        stream.flush()
        assert b'"ok": true' in stream.readline()


def test_concurrent_clients_coalesce_over_tcp(endpoint, telemetry):
    """N parallel sockets asking the identical cold question produce
    one execution — the wire-level version of the coalescing test."""
    server, _ = endpoint
    replies: list[dict] = [None] * 6

    def client(slot: int) -> None:
        with ServeClient(port=server.port) as connection:
            replies[slot] = connection.simulate([program_payload()])

    threads = [
        threading.Thread(target=client, args=(slot,)) for slot in range(6)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(30.0)
    assert all(reply["ok"] for reply in replies)
    assert telemetry.counter("serve.executed") == 1
    assert telemetry.counter("engine.runs_executed") == 1
    assert {reply["fingerprint"] for reply in replies} == {
        replies[0]["fingerprint"]
    }


def test_shutdown_request_stops_the_server(chip, cheap_options):
    telemetry = Telemetry()
    service = SimulationService(
        chip, cheap_options,
        cache=ResultCache(cache_dir=None, telemetry=telemetry),
        executor="serial", telemetry=telemetry,
    )
    server, thread = start_server(service, port=0)
    try:
        with ServeClient(port=server.port) as client:
            reply = client.shutdown()
            assert reply["ok"] is True and reply["stopping"] is True
        thread.join(10.0)
        assert not thread.is_alive(), "serve_forever must return"
    finally:
        server.server_close()
        service.stop()


def test_server_exposes_bound_port(chip, cheap_options):
    service = SimulationService(
        chip, cheap_options,
        cache=ResultCache(cache_dir=None), executor="serial",
        telemetry=Telemetry(),
    )
    server = NoiseServer(("127.0.0.1", 0), service)
    try:
        assert server.port > 0
    finally:
        server.server_close()
