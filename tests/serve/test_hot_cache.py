"""Hot tier: LRU semantics, bounds, thread safety."""

from __future__ import annotations

import threading

import pytest

from repro.serve import HotCache


def test_get_put_and_stats():
    cache = HotCache(max_entries=4)
    assert cache.get("a") is None
    cache.put("a", {"v": 1})
    assert cache.get("a") == {"v": 1}
    stats = cache.stats()
    assert stats["entries"] == 1
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["capacity"] == 4


def test_lru_eviction_order():
    cache = HotCache(max_entries=2)
    cache.put("a", {"v": 1})
    cache.put("b", {"v": 2})
    cache.get("a")  # refresh a → b is now the LRU victim
    cache.put("c", {"v": 3})
    assert "a" in cache
    assert "b" not in cache
    assert "c" in cache
    assert cache.stats()["evictions"] == 1


def test_put_overwrites_in_place():
    cache = HotCache(max_entries=2)
    cache.put("a", {"v": 1})
    cache.put("a", {"v": 2})
    assert len(cache) == 1
    assert cache.get("a") == {"v": 2}


def test_clear():
    cache = HotCache(max_entries=2)
    cache.put("a", {"v": 1})
    cache.clear()
    assert len(cache) == 0
    assert cache.get("a") is None


def test_capacity_validated():
    with pytest.raises(ValueError):
        HotCache(max_entries=0)


def test_concurrent_access_stays_consistent():
    """Hammer one bounded cache from many threads: no lost structure,
    occupancy never exceeds capacity, accounting adds up."""
    cache = HotCache(max_entries=8)
    errors: list[BaseException] = []

    def worker(base: int) -> None:
        try:
            for i in range(300):
                key = f"k{(base * 7 + i) % 24}"
                cache.put(key, {"v": i})
                cache.get(key)
                assert len(cache) <= 8
        except BaseException as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(n,)) for n in range(6)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    stats = cache.stats()
    assert stats["entries"] <= 8
    assert stats["hits"] + stats["misses"] == 6 * 300
