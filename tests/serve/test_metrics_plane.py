"""The serve metrics plane: percentiles, exposition, SLOs, scrape."""

from __future__ import annotations

import urllib.error
import urllib.request

import pytest

from repro.engine.cache import ResultCache
from repro.obs import SLO, SloPolicy, parse_prometheus_text
from repro.serve import SimulationService, start_metrics_http

from .conftest import simulate_payload


@pytest.fixture()
def manual_service(chip, cheap_options, telemetry):
    """A started service with the ticker disabled: tests drive
    :meth:`tick_metrics` with pinned timestamps."""
    svc = SimulationService(
        chip,
        cheap_options,
        cache=ResultCache(cache_dir=None, telemetry=telemetry),
        executor="serial",
        telemetry=telemetry,
        window_s=0.0,
    ).start()
    yield svc
    svc.stop()


class TestMetricsVerb:
    def test_percentiles_cover_overall_and_tiers(self, manual_service):
        manual_service.handle(simulate_payload())  # executed
        manual_service.handle(simulate_payload())  # hot
        reply = manual_service.handle({"op": "metrics"})
        assert reply["ok"]
        percentiles = reply["percentiles"]
        overall = percentiles["serve.request.seconds"]
        assert overall["count"] == 2
        for key in ("p50", "p95", "p99", "mean", "max"):
            assert key in overall
        assert overall["p50"] <= overall["p95"] <= overall["p99"]
        assert percentiles["serve.request.hot.seconds"]["count"] == 1
        assert percentiles["serve.request.executed.seconds"]["count"] == 1
        # Tiers that answered nothing are omitted, not zero-filled.
        assert "serve.request.cache.seconds" not in percentiles

    def test_metrics_reply_carries_slo_and_window_shape(
        self, manual_service
    ):
        manual_service.tick_metrics(now=100.0)
        manual_service.handle(simulate_payload())
        manual_service.tick_metrics(now=105.0)
        reply = manual_service.handle({"op": "metrics"})
        assert reply["window_s"] == 0.0
        assert reply["windows"] == 1
        names = {status["slo"] for status in reply["slo"]}
        assert {"hot-latency", "error-rate"} <= names


class TestMetricsText:
    def test_verb_returns_parseable_exposition(self, manual_service):
        manual_service.handle(simulate_payload())
        manual_service.handle(simulate_payload())
        reply = manual_service.handle({"op": "metrics_text"})
        assert reply["ok"]
        samples = parse_prometheus_text(reply["text"])
        assert samples["repro_serve_requests_total"]
        assert any(
            name.startswith("repro_serve_request_seconds_bucket")
            for name in samples
        )
        # Every sample carries the chip label.
        for name, by_labels in samples.items():
            for labels in by_labels:
                assert "chip" in dict(labels), name

    def test_gauges_expose_hit_ratio_qps_and_windowed_p95(
        self, manual_service
    ):
        manual_service.tick_metrics(now=100.0)
        manual_service.handle(simulate_payload())
        manual_service.handle(simulate_payload())
        manual_service.handle(simulate_payload())
        manual_service.tick_metrics(now=102.0)
        gauges = manual_service.gauges()
        # 1 executed + 2 hot replies → 2/3 answered without the engine.
        assert gauges["serve.tier.hit.ratio"] == pytest.approx(2 / 3)
        assert gauges["serve.qps"] == pytest.approx(1.5)
        assert gauges["serve.request.p95.seconds"] is not None
        assert gauges["serve.slo.hot_latency.burn.rate"] is not None
        samples = parse_prometheus_text(
            manual_service.handle({"op": "metrics_text"})["text"]
        )
        assert "repro_serve_qps" in samples
        assert "repro_serve_tier_hit_ratio" in samples
        assert "repro_serve_request_p95_seconds" in samples


class TestSlo:
    def test_impossible_latency_target_trips_violation(
        self, chip, cheap_options, telemetry
    ):
        tight = SloPolicy([SLO(
            name="impossible", kind="latency", budget=0.001,
            histogram="serve.request.executed.seconds",
            threshold_s=1e-4,
        )])
        svc = SimulationService(
            chip, cheap_options,
            cache=ResultCache(cache_dir=None, telemetry=telemetry),
            executor="serial", telemetry=telemetry,
            window_s=0.0, slo=tight,
        ).start()
        try:
            svc.tick_metrics(now=10.0)
            svc.handle(simulate_payload())
            svc.tick_metrics(now=15.0)
        finally:
            svc.stop()
        assert telemetry.counter("slo.violations.impossible") == 1
        (status,) = svc.handle({"op": "metrics"})["slo"]
        assert status["violated"]
        assert status["burn_rate"] > 1.0

    def test_quiet_windows_do_not_violate(self, manual_service, telemetry):
        manual_service.tick_metrics(now=10.0)
        manual_service.tick_metrics(now=15.0)
        assert telemetry.counter("slo.evaluations") == 1
        assert telemetry.counter("slo.violations") == 0


class TestTicker:
    def test_background_ticker_accumulates_windows(
        self, chip, cheap_options, telemetry
    ):
        svc = SimulationService(
            chip, cheap_options,
            cache=ResultCache(cache_dir=None, telemetry=telemetry),
            executor="serial", telemetry=telemetry,
            window_s=0.02,
        ).start()
        try:
            import time

            deadline = time.monotonic() + 10.0
            while len(svc.series) < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert len(svc.series) >= 2
        finally:
            svc.stop()
        assert svc._ticker is None or not svc._ticker.is_alive()


class TestHttpScrape:
    def test_scrape_twice_is_monotone_and_hygienic(self, manual_service):
        server, thread = start_metrics_http(manual_service, port=0)
        try:
            url = f"http://127.0.0.1:{server.port}/metrics"

            def scrape():
                with urllib.request.urlopen(url, timeout=10) as response:
                    assert response.status == 200
                    assert "text/plain" in response.headers["Content-Type"]
                    return parse_prometheus_text(
                        response.read().decode("utf-8")
                    )

            manual_service.handle(simulate_payload())
            first = scrape()
            manual_service.handle(simulate_payload())
            second = scrape()
            for name, by_labels in first.items():
                if not name.endswith("_total"):
                    continue  # gauges may move either way
                for labels, value in by_labels.items():
                    assert second[name][labels] >= value, name
            requests = "repro_serve_requests_total"
            (before,) = first[requests].values()
            (after,) = second[requests].values()
            assert after == before + 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)

    def test_healthz_and_unknown_paths(self, manual_service):
        server, thread = start_metrics_http(manual_service, port=0)
        try:
            base = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(base + "/healthz", timeout=10) as r:
                assert r.status == 200
                assert b'"ok"' in r.read() or b"ok" in r.read()
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(base + "/nope", timeout=10)
            assert excinfo.value.code == 404
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)
