"""The service logic: tiers, coalescing, backpressure, degradation.

These tests drive :meth:`SimulationService.handle` in-process (the TCP
layer adds nothing but framing; it is covered separately) and use the
``GatedService`` seam from conftest to hold execution open while
concurrent requests pile onto it — the only way to make coalescing and
backpressure assertions deterministic.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine.cache import ResultCache
from repro.faults import FaultPlan
from repro.obs import Telemetry
from repro.serve import SimulationService

from .conftest import simulate_payload


def _spin_until(predicate, timeout=10.0, what="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:  # pragma: no cover - test bug
            raise AssertionError(f"timed out waiting for {what}")
        time.sleep(0.002)


class TestTiers:
    def test_cold_executed_then_hot(self, service, telemetry):
        first = service.handle(simulate_payload())
        assert first["ok"] and first["tier"] == "executed"
        second = service.handle(simulate_payload())
        assert second["ok"] and second["tier"] == "hot"
        assert second["fingerprint"] == first["fingerprint"]
        assert telemetry.counter("serve.executed") == 1
        assert telemetry.counter("engine.runs_executed") == 1

    def test_all_tiers_return_identical_results(self, service, telemetry):
        """Acceptance: hot-tier ≡ disk-tier ≡ freshly computed. The
        encoded body must be byte-identical whichever tier answered."""
        executed = service.handle(simulate_payload())
        hot = service.handle(simulate_payload())
        service.hot.clear()  # force the next query down to the cache
        cached = service.handle(simulate_payload())
        assert executed["tier"] == "executed"
        assert hot["tier"] == "hot"
        assert cached["tier"] == "cache"
        assert executed["result"] == hot["result"] == cached["result"]
        # One execution total, across all three queries.
        assert telemetry.counter("serve.executed") == 1
        assert telemetry.counter("engine.runs_executed") == 1

    def test_cache_tier_spans_service_restarts(self, chip, cheap_options,
                                               tmp_path):
        """The disk tier outlives the process: a fresh service over the
        same cache directory answers without executing."""
        telemetry_a = Telemetry()
        svc = SimulationService(
            chip, cheap_options,
            cache=ResultCache(cache_dir=tmp_path, telemetry=telemetry_a),
            executor="serial", telemetry=telemetry_a,
        ).start()
        first = svc.handle(simulate_payload())
        svc.stop()

        telemetry_b = Telemetry()
        reborn = SimulationService(
            chip, cheap_options,
            cache=ResultCache(cache_dir=tmp_path, telemetry=telemetry_b),
            executor="serial", telemetry=telemetry_b,
        ).start()
        replay = reborn.handle(simulate_payload())
        reborn.stop()
        assert first["tier"] == "executed"
        assert replay["tier"] == "cache"
        assert replay["result"] == first["result"]
        assert telemetry_b.counter("engine.runs_executed") == 0

    def test_distinct_requests_distinct_fingerprints(self, service):
        a = service.handle(simulate_payload(i_high=25.0))
        b = service.handle(simulate_payload(i_high=26.0))
        assert a["fingerprint"] != b["fingerprint"]
        assert a["result"] != b["result"]


class TestCoalescing:
    def test_concurrent_identical_requests_execute_once(
        self, gated_service, telemetry
    ):
        """Acceptance: 8 concurrent identical cold queries → exactly
        one engine execution; 7 riders coalesce onto the leader."""
        svc = gated_service
        replies: list[dict] = [None] * 8

        def client(slot: int) -> None:
            replies[slot] = svc.handle(simulate_payload())

        threads = [
            threading.Thread(target=client, args=(slot,)) for slot in range(8)
        ]
        for thread in threads:
            thread.start()
        # All eight must be attached to one flight before execution is
        # allowed to proceed: 1 leader queued, 7 counted as coalesced.
        _spin_until(lambda: svc.entered.is_set(), what="executor entry")
        _spin_until(
            lambda: telemetry.counter("serve.coalesced") == 7,
            what="riders to attach",
        )
        assert svc.flights.in_flight() == 1
        svc.gate.set()
        for thread in threads:
            thread.join(30.0)

        assert all(reply["ok"] for reply in replies)
        tiers = sorted(reply["tier"] for reply in replies)
        assert tiers.count("executed") == 1
        assert tiers.count("coalesced") == 7
        bodies = {repr(reply["result"]) for reply in replies}
        assert len(bodies) == 1, "riders must see the leader's result"
        # The acceptance counter: one execution, engine-confirmed.
        assert telemetry.counter("serve.executed") == 1
        assert telemetry.counter("engine.runs_executed") == 1
        assert telemetry.counter("serve.coalesced") == 7
        assert telemetry.counter("serve.requests") == 8

    def test_flight_retires_after_resolution(self, service):
        service.handle(simulate_payload())
        assert service.flights.in_flight() == 0


class TestBackpressure:
    def test_busy_reply_when_queue_full(self, chip, cheap_options):
        """queue_limit=1: with the executor wedged on request A and
        request B occupying the queue, request C is shed with a busy
        reply carrying a retry hint — and never reaches the engine."""
        from .conftest import GatedService

        telemetry = Telemetry()
        svc = GatedService(
            chip, cheap_options,
            cache=ResultCache(cache_dir=None, telemetry=telemetry),
            executor="serial", telemetry=telemetry,
            queue_limit=1, max_batch=1,
        ).start()
        try:
            replies: dict[str, dict] = {}

            def client(name: str, i_high: float) -> None:
                replies[name] = svc.handle(simulate_payload(i_high=i_high))

            thread_a = threading.Thread(target=client, args=("a", 25.0))
            thread_a.start()
            _spin_until(lambda: svc.entered.is_set(), what="A to execute")

            thread_b = threading.Thread(target=client, args=("b", 26.0))
            thread_b.start()
            _spin_until(
                lambda: svc._queue.qsize() == 1, what="B to occupy the queue"
            )

            # C cannot be admitted: immediate busy, synchronously.
            busy = svc.handle(simulate_payload(i_high=27.0))
            assert busy["ok"] is False
            assert busy["status"] == "busy"
            assert busy["retry_after_s"] > 0
            assert telemetry.counter("serve.busy") == 1

            svc.gate.set()
            thread_a.join(30.0)
            thread_b.join(30.0)
            assert replies["a"]["ok"] and replies["a"]["tier"] == "executed"
            assert replies["b"]["ok"] and replies["b"]["tier"] == "executed"
            # The shed request never executed anywhere.
            assert telemetry.counter("serve.executed") == 2
            # Backpressure cleared: C succeeds on retry.
            retry = svc.handle(simulate_payload(i_high=27.0))
            assert retry["ok"] and retry["tier"] == "executed"
        finally:
            svc.gate.set()
            svc.stop()

    def test_closing_service_sheds_new_requests(self, service):
        service.handle(simulate_payload())  # warm one entry
        service._closing = True
        try:
            # Hot tier still answers while draining...
            hot = service.handle(simulate_payload())
            assert hot["ok"] and hot["tier"] == "hot"
            # ...but cold work is refused.
            cold = service.handle(simulate_payload(i_high=26.0))
            assert cold["status"] == "busy"
        finally:
            service._closing = False


class TestVerbs:
    def test_health_shape(self, service):
        health = service.handle({"op": "health"})
        assert health["ok"] is True
        assert health["status"] == "ok"
        assert health["queue_depth"] == 0
        assert health["queue_limit"] == 32
        assert health["in_flight"] == 0
        assert set(health["hot"]) >= {"entries", "capacity", "hits"}
        assert health["executor"] == "serial"
        assert len(health["chip"]) == 64  # digest, not the raw identity

    def test_metrics_shape(self, service):
        service.handle(simulate_payload())
        metrics = service.handle({"op": "metrics"})
        assert metrics["ok"] is True
        counters = metrics["metrics"]["counters"]
        assert counters["serve.requests"] == 1
        assert counters["serve.tier.executed"] == 1
        assert "serve.request.seconds" in metrics["metrics"]["histograms"]

    def test_unknown_op_is_bad_request(self, service, telemetry):
        reply = service.handle({"op": "frobnicate"})
        assert reply["ok"] is False
        assert reply["status"] == "bad-request"
        assert telemetry.counter("serve.bad_requests") == 1

    def test_malformed_simulate_is_bad_request(self, service):
        reply = service.handle({"op": "simulate", "mapping": "nope"})
        assert reply["ok"] is False
        assert reply["status"] == "bad-request"
        assert "mapping" in reply["error"]

    def test_shutdown_op_acknowledged_in_process(self, service):
        reply = service.handle({"op": "shutdown"})
        assert reply["ok"] is True and reply["stopping"] is True


class TestDegradation:
    def test_transient_worker_death_absorbed_by_retry(
        self, chip, cheap_options
    ):
        """A worker dying mid-request (injected crash, transient) is
        retried by the session underneath the service: the client sees
        a normal reply, the retry is visible only in the counters."""
        telemetry = Telemetry()
        svc = SimulationService(
            chip, cheap_options,
            cache=ResultCache(cache_dir=None, telemetry=telemetry),
            executor="serial", telemetry=telemetry,
            faults=FaultPlan(seed=3, crash_rate=1.0, transient=True),
        ).start()
        try:
            reply = svc.handle(simulate_payload())
            assert reply["ok"] is True
            assert reply["tier"] == "executed"
            assert telemetry.counter("engine.retries") >= 1
            assert telemetry.counter("serve.failures") == 0
        finally:
            svc.stop()

    def test_permanent_failure_is_an_error_reply_not_a_dead_server(
        self, chip, cheap_options
    ):
        """A run that fails past its retry budget becomes a structured
        error reply for that request only; the service keeps serving."""
        telemetry = Telemetry()
        svc = SimulationService(
            chip, cheap_options,
            cache=ResultCache(cache_dir=None, telemetry=telemetry),
            executor="serial", telemetry=telemetry,
            faults=FaultPlan(seed=3, exception_rate=1.0, transient=False),
        ).start()
        try:
            reply = svc.handle(simulate_payload())
            assert reply["ok"] is False
            assert reply["status"] == "error"
            assert "fail" in reply["error"].lower()
            assert telemetry.counter("serve.failures") == 1
            # Still alive and answering.
            assert svc.handle({"op": "health"})["ok"] is True
            again = svc.handle(simulate_payload(i_high=26.0))
            assert again["ok"] is False and again["status"] == "error"
            assert svc.flights.in_flight() == 0
        finally:
            svc.stop()

    def test_executor_thread_survives_unexpected_errors(self, service):
        """A bug-class exception inside the batch path rejects the
        affected flights and keeps the drain loop alive."""
        original = service._process

        def explode(batch):
            service._process = original  # heal after one explosion
            raise RuntimeError("synthetic batch bug")

        service._process = explode
        reply = service.handle(simulate_payload())
        assert reply["ok"] is False
        assert "synthetic batch bug" in reply["error"]
        assert service.telemetry.counter("serve.batch_errors") == 1
        # The next request sails through the healed path.
        healthy = service.handle(simulate_payload())
        assert healthy["ok"] is True and healthy["tier"] == "executed"


class TestValidation:
    def test_queue_limit_validated(self, chip, cheap_options):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="queue_limit"):
            SimulationService(chip, cheap_options, queue_limit=0,
                              cache=ResultCache(cache_dir=None))

    def test_max_batch_validated(self, chip, cheap_options):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="max_batch"):
            SimulationService(chip, cheap_options, max_batch=0,
                              cache=ResultCache(cache_dir=None))

    def test_batching_executes_grouped_requests(self, chip, cheap_options):
        """Distinct queued requests drain into one engine batch."""
        from .conftest import GatedService

        telemetry = Telemetry()
        svc = GatedService(
            chip, cheap_options,
            cache=ResultCache(cache_dir=None, telemetry=telemetry),
            executor="serial", telemetry=telemetry, max_batch=4,
        ).start()
        try:
            replies: list[dict] = [None] * 3

            def client(slot: int) -> None:
                replies[slot] = svc.handle(
                    simulate_payload(i_high=25.0 + slot)
                )

            threads = [
                threading.Thread(target=client, args=(slot,))
                for slot in range(3)
            ]
            threads[0].start()
            _spin_until(lambda: svc.entered.is_set(), what="first execute")
            for thread in threads[1:]:
                thread.start()
            _spin_until(
                lambda: svc._queue.qsize() == 2, what="queue to fill"
            )
            svc.gate.set()
            for thread in threads:
                thread.join(30.0)
            assert all(r["ok"] and r["tier"] == "executed" for r in replies)
            assert telemetry.counter("serve.executed") == 3
            assert len({r["fingerprint"] for r in replies}) == 3
        finally:
            svc.gate.set()
            svc.stop()
