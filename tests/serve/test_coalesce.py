"""Single-flight registry: leader election, riders, rejection."""

from __future__ import annotations

import threading

from repro.serve import SingleFlight


def test_first_join_leads_second_follows():
    flights = SingleFlight()
    leader, flight = flights.join("fp")
    assert leader
    follower, same = flights.join("fp")
    assert not follower
    assert same is flight
    assert flights.riders("fp") == 1
    assert flights.in_flight() == 1


def test_finish_retires_the_flight():
    flights = SingleFlight()
    _, flight = flights.join("fp")
    flight.resolve({"v": 1}, "executed")
    flights.finish(flight)
    assert flights.in_flight() == 0
    # The next identical request starts a fresh flight (it would hit
    # the hot tier first in the real service).
    leader, fresh = flights.join("fp")
    assert leader
    assert fresh is not flight


def test_finish_is_idempotent_and_flight_scoped():
    flights = SingleFlight()
    _, first = flights.join("fp")
    flights.finish(first)
    _, second = flights.join("fp")
    flights.finish(first)  # stale retire must not evict the new flight
    assert flights.in_flight() == 1
    flights.finish(second)
    assert flights.in_flight() == 0


def test_followers_receive_leader_resolution():
    flights = SingleFlight()
    _, flight = flights.join("fp")
    seen: list[dict] = []

    def follower():
        _, shared = flights.join("fp")
        assert shared.wait(5.0)
        seen.append(shared.payload)

    threads = [threading.Thread(target=follower) for _ in range(3)]
    for thread in threads:
        thread.start()
    while flights.riders("fp") < 3:
        pass
    flight.resolve({"v": 42}, "executed")
    for thread in threads:
        thread.join(5.0)
    assert seen == [{"v": 42}] * 3
    assert flight.tier == "executed"


def test_rejected_leader_rejects_riders_too():
    """A leader that cannot be admitted (busy) takes its riders down
    with it — they were waiting on work that never started."""
    flights = SingleFlight()
    _, flight = flights.join("fp")
    outcomes: list[dict] = []

    def follower():
        _, shared = flights.join("fp")
        assert shared.wait(5.0)
        outcomes.append(shared.error)

    thread = threading.Thread(target=follower)
    thread.start()
    while flights.riders("fp") < 1:
        pass
    busy = {"ok": False, "status": "busy", "retry_after_s": 0.5}
    flight.reject(busy)
    flights.finish(flight)
    thread.join(5.0)
    assert outcomes == [busy]
    assert flight.payload is None
    assert flight.done
