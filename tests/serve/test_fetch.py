"""The ``fetch`` verb: raw disk-tier payload retrieval by fingerprint
(what fleet workers probe before executing a claimed run)."""

from __future__ import annotations

import base64
import pickle

import pytest

from repro.engine.cache import ResultCache
from repro.obs import Telemetry
from repro.serve import ServeClient, SimulationService, start_server

from .conftest import simulate_payload


@pytest.fixture()
def disk_service(chip, cheap_options, telemetry, tmp_path):
    """A started service over a *disk* cache (fetch only ever answers
    from the disk tier)."""
    svc = SimulationService(
        chip, cheap_options,
        cache=ResultCache(cache_dir=tmp_path / "cache", telemetry=telemetry),
        executor="serial", telemetry=telemetry,
    ).start()
    yield svc
    svc.stop()


class TestPeekBytes:
    def test_round_trips_the_stored_pickle(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        key = "a" * 64
        cache.put(key, {"value": 42})
        raw = cache.peek_bytes(key)
        assert raw is not None
        assert pickle.loads(raw) == {"value": 42}

    def test_missing_key_is_none(self, tmp_path):
        assert ResultCache(cache_dir=tmp_path).peek_bytes("b" * 64) is None

    def test_memory_only_cache_has_no_bytes(self):
        cache = ResultCache(cache_dir=None)
        cache.put("c" * 64, 1)
        assert cache.peek_bytes("c" * 64) is None


class TestFetchOp:
    def test_hit_returns_the_exact_disk_bytes(self, disk_service, telemetry):
        fingerprint = disk_service.handle(simulate_payload())["fingerprint"]
        reply = disk_service.handle(
            {"op": "fetch", "fingerprint": fingerprint}
        )
        assert reply["ok"] and reply["status"] == "hit"
        raw = base64.b64decode(reply["payload"])
        assert raw == disk_service.cache.peek_bytes(fingerprint)
        assert telemetry.counter("serve.fetch_hits") == 1

    def test_miss_is_not_an_error(self, disk_service, telemetry):
        reply = disk_service.handle(
            {"op": "fetch", "fingerprint": "f" * 64}
        )
        assert reply["ok"] and reply["status"] == "miss"
        assert reply["payload"] is None
        assert telemetry.counter("serve.fetch_misses") == 1

    def test_missing_fingerprint_is_a_bad_request(self, disk_service,
                                                  telemetry):
        reply = disk_service.handle({"op": "fetch"})
        assert reply["ok"] is False
        assert telemetry.counter("serve.bad_requests") == 1


class TestClientFetch:
    def test_fetch_over_tcp(self, disk_service):
        server, thread = start_server(disk_service, port=0)
        try:
            fingerprint = disk_service.handle(
                simulate_payload()
            )["fingerprint"]
            with ServeClient(port=server.port) as client:
                raw = client.fetch(fingerprint)
                assert raw == disk_service.cache.peek_bytes(fingerprint)
                assert client.fetch("e" * 64) is None
        finally:
            server.shutdown()
            server.server_close()
            thread.join(10.0)
