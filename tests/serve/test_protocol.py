"""Wire protocol: decode/encode round trips, validation, framing."""

from __future__ import annotations

import io

import pytest

from repro.engine.cache import ResultCache
from repro.engine.session import SimulationSession
from repro.errors import ProtocolError
from repro.machine.chip import N_CORES
from repro.machine.runner import RunOptions
from repro.machine.workload import CurrentProgram, SyncSpec
from repro.serve.protocol import (
    decode_program,
    decode_request,
    encode_program,
    encode_result,
    read_message,
    write_message,
)


def _payload(**extra):
    payload = {"mapping": [{"i_low": 5.0, "i_high": 25.0, "freq_hz": 9e7}]}
    payload.update(extra)
    return payload


class TestDecodeRequest:
    def test_minimal_request_pads_idle_cores(self):
        request = decode_request(_payload())
        assert len(request.mapping) == N_CORES
        assert isinstance(request.mapping[0], CurrentProgram)
        assert all(entry is None for entry in request.mapping[1:])
        assert request.tag == "serve"

    def test_options_override_defaults(self):
        defaults = RunOptions(segments=4, base_samples=2048)
        request = decode_request(
            _payload(options={"segments": 2, "seed": 99}), defaults
        )
        assert request.options.segments == 2
        assert request.options.seed == 99
        assert request.options.base_samples == 2048  # inherited

    def test_mapping_required(self):
        with pytest.raises(ProtocolError, match="mapping"):
            decode_request({"op": "simulate"})

    def test_mapping_too_long(self):
        entry = {"i_low": 1.0, "i_high": 2.0}
        with pytest.raises(ProtocolError, match="1..6"):
            decode_request({"mapping": [entry] * (N_CORES + 1)})

    def test_unknown_program_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown program field"):
            decode_request(
                {"mapping": [{"i_low": 1.0, "i_high": 2.0, "nope": 1}]}
            )

    def test_unknown_option_rejected(self):
        with pytest.raises(ProtocolError, match="unknown option"):
            decode_request(_payload(options={"wibble": 1}))

    def test_collect_waveforms_not_servable(self):
        with pytest.raises(ProtocolError, match="collect_waveforms"):
            decode_request(_payload(options={"collect_waveforms": True}))

    def test_invalid_option_value_rejected(self):
        with pytest.raises(ProtocolError, match="invalid options"):
            decode_request(_payload(options={"segments": 0}))

    def test_non_scalar_tag_rejected(self):
        with pytest.raises(ProtocolError, match="tag"):
            decode_request(_payload(tag=["a", "b"]))

    def test_program_needs_currents(self):
        with pytest.raises(ProtocolError, match="i_high"):
            decode_request({"mapping": [{"i_low": 1.0}]})

    def test_bad_sync_rejected(self):
        with pytest.raises(ProtocolError, match="sync"):
            decode_request(
                {"mapping": [
                    {"i_low": 1.0, "i_high": 2.0, "sync": {"bogus": 1}}
                ]}
            )


class TestProgramRoundTrip:
    def test_encode_decode_round_trip(self):
        program = CurrentProgram(
            "m", i_low=14.0, i_high=32.0, freq_hz=2.6e6, rise_time=11e-9,
            sync=SyncSpec(offset=62.5e-9),  # one TOD step of misalignment
        )
        assert decode_program(encode_program(program), 0) == program

    def test_none_round_trips(self):
        assert encode_program(None) is None


class TestFingerprint:
    def test_matches_session_key_space(self, chip):
        """The service fingerprint IS the engine cache key: a request
        decoded from the wire addresses the same content as the same
        run issued through a batch SimulationSession."""
        options = RunOptions(segments=1, events_cap=40, base_samples=64)
        request = decode_request(_payload(), options)
        session = SimulationSession(
            chip, request.options,
            cache=ResultCache(cache_dir=None), executor="serial",
        )
        assert request.fingerprint(chip) == session.fingerprint(
            list(request.mapping), request.tag
        )

    def test_distinct_requests_distinct_keys(self, chip):
        a = decode_request(_payload())
        b = decode_request(
            {"mapping": [{"i_low": 5.0, "i_high": 26.0, "freq_hz": 9e7}]}
        )
        assert a.fingerprint(chip) != b.fingerprint(chip)


class TestFraming:
    def test_round_trip(self):
        buffer = io.BytesIO()
        write_message(buffer, {"op": "health", "n": 1})
        buffer.seek(0)
        assert read_message(buffer) == {"op": "health", "n": 1}

    def test_eof_returns_none(self):
        assert read_message(io.BytesIO(b"")) is None

    def test_bad_json_raises(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            read_message(io.BytesIO(b"{nope\n"))

    def test_non_object_raises(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            read_message(io.BytesIO(b"[1, 2]\n"))


def test_encode_result_shape(chip):
    options = RunOptions(segments=1, events_cap=40, base_samples=64)
    request = decode_request(_payload(), options)
    session = SimulationSession(
        chip, request.options,
        cache=ResultCache(cache_dir=None), executor="serial",
    )
    body = encode_result(session.run(list(request.mapping), request.tag))
    assert set(body) == {"max_p2p", "worst_vmin", "measurements"}
    assert len(body["measurements"]) == N_CORES
    assert body["max_p2p"] > 0
    import json

    json.dumps(body)  # must be pure JSON
