"""Multi-chip hosting: roster resolution, lazy builds, LRU eviction,
and default-chip neutrality.

The roster's contract: chip *identity* is cheap (registration compiles,
never builds), chip *build* is lazy (first execution-tier miss, on the
executor thread), at most ``max_resident_chips`` non-default chips stay
built, and the default chip is pinned — a service hosting extra chips
answers default-chip requests byte-identically to a single-chip
service.
"""

from __future__ import annotations

import threading

import pytest

from repro.chips import ChipSpec, get_family
from repro.engine.cache import ResultCache
from repro.errors import ConfigError
from repro.obs import Telemetry
from repro.serve import SimulationService

from .conftest import simulate_payload


def family_service(chip, cheap_options, telemetry, **kwargs):
    kwargs.setdefault("chips", get_family("quick").members())
    return SimulationService(
        chip,
        cheap_options,
        cache=ResultCache(cache_dir=None, telemetry=telemetry),
        executor="serial",
        telemetry=telemetry,
        **kwargs,
    ).start()


@pytest.fixture()
def multi(chip, cheap_options, telemetry):
    svc = family_service(chip, cheap_options, telemetry)
    yield svc
    svc.stop()


class TestRoster:
    def test_default_member_aliases_the_pinned_entry(self, multi):
        """``quick/cores6`` is the reference chip: it must resolve to
        the pinned default entry, not get hosted twice."""
        stats = multi.roster.stats()
        assert stats["hosted"] == 3  # default + cores4 + cores8
        entry = multi.roster.resolve("quick/cores6")
        assert entry is multi.roster.default
        assert multi.roster.resolve("cores6") is entry
        assert multi.roster.resolve(entry.digest) is entry
        assert multi.roster.resolve(None) is entry

    def test_unknown_chip_is_a_bad_request(self, multi):
        reply = multi.handle({**simulate_payload(), "chip": "cores5"})
        assert reply["ok"] is False
        assert reply["status"] == "bad-request"
        assert "unknown chip" in reply["error"]

    def test_duplicate_hosted_identity_refused(
        self, chip, cheap_options, telemetry
    ):
        twin = ChipSpec(name="other", n_cores=4)
        with pytest.raises(ConfigError, match="duplicates"):
            family_service(
                chip, cheap_options, telemetry,
                chips=(*get_family("quick").members(), twin),
            ).stop()

    def test_max_resident_must_be_positive(
        self, chip, cheap_options, telemetry
    ):
        with pytest.raises(ConfigError, match="max_resident"):
            family_service(
                chip, cheap_options, telemetry, max_resident_chips=0
            )


class TestNeutrality:
    def test_default_requests_match_a_single_chip_service(
        self, multi, service
    ):
        """The neutrality guarantee at the wire: same request, same
        fingerprint, whether or not extra chips are hosted — and the
        family alias of the reference member is the same address."""
        payload = simulate_payload()
        hosted = multi.handle(payload)
        solo = service.handle(payload)
        assert hosted["ok"] and solo["ok"]
        assert hosted["fingerprint"] == solo["fingerprint"]
        aliased = multi.handle({**payload, "chip": "cores6"})
        assert aliased["fingerprint"] == hosted["fingerprint"]
        assert aliased["tier"] == "hot"

    def test_chips_fingerprint_distinctly(self, multi):
        payload = simulate_payload()
        replies = {
            name: multi.handle({**payload, "chip": name})
            for name in ("cores4", "cores6", "cores8")
        }
        assert all(reply["ok"] for reply in replies.values())
        fingerprints = {
            reply["fingerprint"] for reply in replies.values()
        }
        assert len(fingerprints) == 3


class TestResidencyAndEviction:
    def test_builds_are_lazy(self, multi):
        assert multi.roster.stats()["resident"] == 1  # only the default
        reply = multi.handle({**simulate_payload(), "chip": "cores4"})
        assert reply["ok"] and reply["tier"] == "executed"
        stats = multi.roster.stats()
        assert stats["builds"] == 1
        assert stats["resident"] == 2

    def test_lru_eviction_over_budget(
        self, chip, cheap_options, telemetry
    ):
        svc = family_service(
            chip, cheap_options, telemetry, max_resident_chips=1
        )
        try:
            payload = simulate_payload()
            assert svc.handle({**payload, "chip": "cores4"})["ok"]
            assert svc.handle({**payload, "chip": "cores8"})["ok"]
            stats = svc.roster.stats()
            assert stats["builds"] == 2
            assert stats["evictions"] == 1
            by_name = {entry["name"]: entry for entry in stats["chips"]}
            assert by_name["default"]["resident"]  # pinned, never evicted
            assert not by_name["quick/cores4"]["resident"]
            assert by_name["quick/cores8"]["resident"]
        finally:
            svc.stop()

    def test_evicted_chip_keeps_its_hot_tier(
        self, chip, cheap_options, telemetry
    ):
        """Eviction drops the heavy build, not the answers: replaying
        an evicted chip's request is a hot-tier JSON reply, no
        rebuild."""
        svc = family_service(
            chip, cheap_options, telemetry, max_resident_chips=1
        )
        try:
            payload = simulate_payload()
            first = svc.handle({**payload, "chip": "cores4"})
            assert first["tier"] == "executed"
            svc.handle({**payload, "chip": "cores8"})  # evicts cores4
            again = svc.handle({**payload, "chip": "cores4"})
            assert again["ok"] and again["tier"] == "hot"
            assert again["fingerprint"] == first["fingerprint"]
            assert svc.roster.stats()["builds"] == 2  # no rebuild
        finally:
            svc.stop()

    def test_eviction_drops_the_warm_session(
        self, chip, cheap_options, telemetry
    ):
        """Warm sessions are keyed by chip digest; evicting a chip must
        drop its sessions so a later rebuild cannot answer from a stale
        chip object."""
        svc = family_service(
            chip, cheap_options, telemetry, max_resident_chips=1
        )
        try:
            payload = simulate_payload()
            svc.handle({**payload, "chip": "cores4"})
            cores4_digest = svc.roster.resolve("cores4").digest
            assert any(
                digest == cores4_digest for digest, _ in svc._sessions
            )
            svc.handle({**payload, "chip": "cores8"})  # evicts cores4
            assert not any(
                digest == cores4_digest for digest, _ in svc._sessions
            )
        finally:
            svc.stop()


class TestConcurrentClients:
    def test_mixed_chip_clients_all_answer(self, multi):
        """Concurrent clients against different hosted chips: every
        request answers on its own chip identity (no cross-chip
        bleed), through one executor thread."""
        names = ["cores4", "cores6", "cores8"] * 3
        replies: dict[int, dict] = {}

        def client(index: int, name: str) -> None:
            payload = simulate_payload(i_high=20.0 + index)
            replies[index] = multi.handle({**payload, "chip": name})

        threads = [
            threading.Thread(target=client, args=(index, name))
            for index, name in enumerate(names)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60.0)
        assert len(replies) == len(names)
        assert all(reply["ok"] for reply in replies.values())
        # Every (payload, chip) pair fingerprints distinctly — no
        # cross-chip or cross-request bleed through the shared queue.
        fingerprints = {
            reply["fingerprint"] for reply in replies.values()
        }
        assert len(fingerprints) == len(names)
