"""Backend selection through the serving layer: warm-kernel
pre-compilation at start, propagation into execution sessions, and the
health surface."""

from __future__ import annotations

import pytest

from repro.engine.cache import ResultCache
from repro.errors import ConfigError
from repro.obs import Telemetry
from repro.pdn.kernels import KERNEL_TOLERANCE_V
from repro.serve import SimulationService

from .conftest import simulate_payload


def make_service(chip, cheap_options, telemetry, backend=None):
    return SimulationService(
        chip,
        cheap_options,
        cache=ResultCache(cache_dir=None, telemetry=telemetry),
        executor="serial",
        telemetry=telemetry,
        backend=backend,
    )


class TestWarmKernel:
    def test_start_precompiles_on_auto(self, chip, cheap_options):
        telemetry = Telemetry()
        svc = make_service(chip, cheap_options, telemetry).start()
        try:
            assert "engine.kernel.compile_seconds" in telemetry.timers
        finally:
            svc.stop()

    def test_reference_backend_skips_compile(self, chip, cheap_options):
        telemetry = Telemetry()
        svc = make_service(
            chip, cheap_options, telemetry, backend="reference"
        ).start()
        try:
            assert "engine.kernel.compile_seconds" not in telemetry.timers
        finally:
            svc.stop()

    def test_invalid_backend_refused(self, chip, cheap_options):
        with pytest.raises(ConfigError):
            make_service(chip, cheap_options, Telemetry(), backend="hyper")


class TestPropagation:
    @pytest.mark.parametrize("backend", ["reference", "batched"])
    def test_health_reports_backend(self, chip, cheap_options, backend):
        svc = make_service(
            chip, cheap_options, Telemetry(), backend=backend
        ).start()
        try:
            assert svc.handle({"op": "health"})["backend"] == backend
        finally:
            svc.stop()

    def test_sessions_execute_on_service_backend(self, chip, cheap_options):
        """A simulate request on a batched service runs through the
        batched solve path (per-backend latency histogram)."""
        telemetry = Telemetry()
        svc = make_service(
            chip, cheap_options, telemetry, backend="batched"
        ).start()
        try:
            reply = svc.handle(simulate_payload())
            assert reply["ok"] is True
            assert telemetry.histogram("engine.run.batched.seconds") is not None
            assert telemetry.histogram("engine.run.reference.seconds") is None
        finally:
            svc.stop()

    def test_backends_agree_through_service(self, chip, cheap_options):
        results = {}
        for backend in ("reference", "batched"):
            svc = make_service(
                chip, cheap_options, Telemetry(), backend=backend
            ).start()
            try:
                results[backend] = svc.handle(simulate_payload())
            finally:
                svc.stop()
        assert results["reference"]["ok"] and results["batched"]["ok"]
        ref = results["reference"]["result"]
        fast = results["batched"]["result"]
        assert abs(fast["worst_vmin"] - ref["worst_vmin"]) < KERNEL_TOLERANCE_V
        for a, b in zip(fast["measurements"], ref["measurements"]):
            assert a["coherent_delta_i"] == b["coherent_delta_i"]
            assert abs(a["v_min"] - b["v_min"]) < KERNEL_TOLERANCE_V
            assert abs(a["v_max"] - b["v_max"]) < KERNEL_TOLERANCE_V
