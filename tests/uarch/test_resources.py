"""Core configuration guard tests."""

import pytest

from repro.errors import UarchError
from repro.uarch.resources import CoreConfig, default_core_config


class TestCoreConfig:
    def test_reference_values(self):
        config = default_core_config()
        assert config.clock_hz == 5.5e9
        assert config.dispatch_width == 3
        assert config.unit_counts["FXU"] == 2
        assert config.unit_counts["LSU"] == 2

    def test_cycle_time(self):
        config = default_core_config()
        assert config.cycle_time == pytest.approx(1 / 5.5e9)

    def test_ramp_time_tracks_cycles(self):
        config = default_core_config()
        assert config.ramp_time == pytest.approx(
            config.power_ramp_cycles * config.cycle_time
        )
        # The ramp must be shorter than the SSN coherence window (30 ns)
        # and longer than a couple of cycles — the calibration relies
        # on both.
        assert 5e-10 < config.ramp_time < 30e-9

    def test_unit_count_lookup(self):
        config = default_core_config()
        assert config.unit_count("VXU") == 1
        with pytest.raises(UarchError):
            config.unit_count("GPU")

    def test_guards(self):
        with pytest.raises(UarchError):
            CoreConfig(clock_hz=0.0)
        with pytest.raises(UarchError):
            CoreConfig(dispatch_width=0)
        with pytest.raises(UarchError):
            CoreConfig(unit_counts={"FXU": 2})  # missing units
