"""Cycle-level pipeline simulator tests, including cross-validation
against the analytic throughput model."""

import numpy as np
import pytest

from repro.errors import UarchError
from repro.uarch.pipeline import simulate_loop
from repro.uarch.throughput import analyze_loop


class TestAgainstAnalyticModel:
    @pytest.mark.parametrize(
        "mnemonics",
        [
            ["CIB"] * 6,
            ["CHHSI", "CHHSI", "CIB"],
            ["SRNM"],
            ["MDTRA", "CIB"],
        ],
    )
    def test_ipc_agreement(self, target, mnemonics):
        body = [target.isa[m] for m in mnemonics]
        analytic = analyze_loop(body, target.core)
        simulated = simulate_loop(body, target.energy_model, iterations=80)
        assert simulated.ipc == pytest.approx(analytic.ipc, rel=0.15)

    def test_max_sequence_agreement(self, target, generator):
        body = list(generator.max_power_result.sequence)
        analytic = analyze_loop(body, target.core)
        simulated = simulate_loop(body, target.energy_model, iterations=100)
        assert simulated.ipc == pytest.approx(analytic.ipc, rel=0.1)

    def test_dynamic_power_agreement(self, target):
        body = [target.isa["CIB"]] * 6
        simulated = simulate_loop(body, target.energy_model, iterations=100)
        analytic = target.energy_model.dynamic_power(body)
        assert simulated.dynamic_power(target.core.clock_hz) == pytest.approx(
            analytic, rel=0.1
        )


class TestTraceShape:
    def test_energy_trace_length_and_total(self, target):
        body = [target.isa["CIB"]] * 3
        result = simulate_loop(body, target.energy_model, iterations=10)
        assert result.energy_per_cycle.size == result.cycles
        expected_total = 10 * target.energy_model.iteration_energy(body)
        assert result.energy_per_cycle.sum() == pytest.approx(expected_total)

    def test_serializing_creates_quiet_cycles(self, target):
        body = [target.isa["SRNM"]]
        result = simulate_loop(body, target.energy_model, iterations=5)
        quiet = np.sum(result.energy_per_cycle == 0.0)
        # Most cycles are pipeline-drained.
        assert quiet > 0.8 * result.cycles

    def test_uop_accounting(self, target):
        body = [target.isa["CIB"], target.isa["CHHSI"]]
        result = simulate_loop(body, target.energy_model, iterations=7)
        expected = 7 * sum(i.uops for i in body)
        assert result.uops == expected


class TestErrors:
    def test_empty_body(self, target):
        with pytest.raises(UarchError):
            simulate_loop([], target.energy_model)

    def test_zero_iterations(self, target):
        with pytest.raises(UarchError):
            simulate_loop([target.isa["CIB"]], target.energy_model, iterations=0)
