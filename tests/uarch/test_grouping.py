"""Dispatch-group formation tests."""

from repro.isa.instruction import InstructionDef
from repro.uarch.grouping import average_group_size, form_groups
from repro.uarch.resources import default_core_config


def inst(mnemonic, **kw):
    defaults = dict(
        description="t", family="fixed-point", unit="FXU",
        issue_class="FXU.arith",
    )
    defaults.update(kw)
    return InstructionDef(mnemonic=mnemonic, **defaults)


ADD = inst("ADD")
BR = inst("BR", unit="BRU", issue_class="BRU.branch", ends_group=True)
LD = inst("LD", unit="LSU", issue_class="LSU.load", memory=True)
CPLX = inst("CPLX", group_alone=True, uops=4)
CFG = default_core_config()


class TestGroupFormation:
    def test_plain_triples(self):
        groups = form_groups([ADD] * 6, CFG)
        assert [len(g) for g in groups] == [3, 3]

    def test_remainder_group(self):
        groups = form_groups([ADD] * 7, CFG)
        assert [len(g) for g in groups] == [3, 3, 1]

    def test_branch_ends_group(self):
        groups = form_groups([ADD, BR, ADD, ADD], CFG)
        assert [len(g) for g in groups] == [2, 2]

    def test_branch_as_third_slot_keeps_full_group(self):
        groups = form_groups([ADD, ADD, BR] * 2, CFG)
        assert [len(g) for g in groups] == [3, 3]

    def test_group_alone_isolates(self):
        groups = form_groups([ADD, CPLX, ADD], CFG)
        assert [len(g) for g in groups] == [1, 1, 1]
        assert groups[1][0].mnemonic == "CPLX"

    def test_memory_port_limit(self):
        groups = form_groups([LD, LD, LD], CFG)
        # Only two memory ops share a group.
        assert [len(g) for g in groups] == [2, 1]

    def test_memory_limit_resets_per_group(self):
        groups = form_groups([LD, LD, LD, LD], CFG)
        assert [len(g) for g in groups] == [2, 2]

    def test_mixed_memory_and_alu(self):
        groups = form_groups([LD, ADD, LD, LD], CFG)
        assert [len(g) for g in groups] == [3, 1]

    def test_empty_body(self):
        assert form_groups([], CFG) == []


class TestAverageGroupSize:
    def test_full_width(self):
        assert average_group_size([ADD] * 6, CFG) == 3.0

    def test_branch_heavy(self):
        assert average_group_size([BR] * 6, CFG) == 1.0

    def test_empty(self):
        assert average_group_size([], CFG) == 0.0
