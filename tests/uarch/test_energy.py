"""Energy model tests: the Table I inversion property and sequence
power composition."""

import pytest

from repro.errors import UarchError
from repro.uarch.energy import EnergyModel
from repro.uarch.power import estimate_loop_power
from repro.uarch.resources import CoreConfig
from repro.uarch.throughput import analyze_loop


class TestCalibrationInversion:
    """A long dependence-free loop of instruction X must measure back
    floor_power * weight(X) — the defining property of the model."""

    @pytest.mark.parametrize("mnemonic", ["CIB", "CHHSI", "SRNM", "MDTRA", "CRB"])
    def test_single_instruction_loops(self, target, mnemonic):
        inst = target.isa[mnemonic]
        body = [inst] * EnergyModel.CALIBRATION_REPS
        est = estimate_loop_power(body, target.energy_model)
        expected = target.core.floor_power_w * inst.power_weight
        assert est.watts == pytest.approx(expected, rel=1e-6)

    def test_floor_is_the_cheapest_loop(self, target):
        srnm = target.isa["SRNM"]
        est = estimate_loop_power([srnm] * 24, target.energy_model)
        assert est.watts == pytest.approx(target.core.floor_power_w, rel=1e-6)


class TestSequenceComposition:
    def test_mixed_sequence_beats_any_single_instruction(self, target, generator):
        """The paper's premise: combining units gives more power than
        any single instruction can."""
        sequence = generator.max_power_result.sequence
        mixed = estimate_loop_power(list(sequence), target.energy_model).watts
        best_single = max(
            target.core.floor_power_w * inst.power_weight for inst in target.isa
        )
        assert mixed > best_single * 1.2

    def test_dilution_lowers_power(self, target):
        cib = target.isa["CIB"]
        srnm = target.isa["SRNM"]
        model = target.energy_model
        pure = estimate_loop_power([cib] * 6, model).watts
        diluted = estimate_loop_power([cib] * 6 + [srnm], model).watts
        assert diluted < pure

    def test_nop_like_beats_stalling_instruction(self, target):
        """The paper: a NOP-ish cheap-but-fast op is NOT minimal power —
        long-latency serializing instructions are."""
        model = target.energy_model
        cheapest_fast = min(
            (i for i in target.isa if i.pipelined and not i.group_alone),
            key=lambda i: i.power_weight,
        )
        fast_power = estimate_loop_power([cheapest_fast] * 24, model).watts
        srnm_power = estimate_loop_power([target.isa["SRNM"]] * 24, model).watts
        assert srnm_power < fast_power


class TestEnergyAccessors:
    def test_epi_positive_for_all_instructions(self, target):
        model = target.energy_model
        for inst in list(target.isa)[:100]:
            assert model.epi(inst) > 0

    def test_epi_accepts_mnemonic_string(self, target):
        model = target.energy_model
        assert model.epi("CIB") == model.epi(target.isa["CIB"])

    def test_epi_unknown_raises(self, target):
        with pytest.raises(UarchError):
            target.energy_model.epi("NOSUCH")

    def test_idle_power_and_current(self, target):
        model = target.energy_model
        assert model.idle_power == target.core.static_power_w
        assert model.idle_current == pytest.approx(
            target.core.static_power_w / target.core.vnom
        )

    def test_iteration_energy_additive(self, target):
        model = target.energy_model
        a = target.isa["CIB"]
        b = target.isa["CHHSI"]
        total = model.iteration_energy([a, b])
        assert total == pytest.approx(model.epi(a) + model.epi(b))


class TestConfigGuards:
    def test_floor_must_exceed_static(self):
        with pytest.raises(UarchError):
            CoreConfig(static_power_w=15.0, floor_power_w=14.0)

    def test_power_estimate_fields(self, target):
        est = estimate_loop_power([target.isa["CIB"]] * 6, target.energy_model)
        assert est.watts == pytest.approx(
            est.dynamic_watts + target.core.static_power_w
        )
        assert est.amps == pytest.approx(est.watts / target.core.vnom)
        assert est.ipc == analyze_loop(
            [target.isa["CIB"]] * 6, target.core
        ).ipc
