"""Analytic loop-throughput model tests."""

import pytest

from repro.errors import UarchError
from repro.isa.instruction import InstructionDef
from repro.uarch.resources import default_core_config
from repro.uarch.throughput import analyze_loop


def inst(mnemonic, **kw):
    defaults = dict(
        description="t", family="fixed-point", unit="FXU",
        issue_class="FXU.arith",
    )
    defaults.update(kw)
    return InstructionDef(mnemonic=mnemonic, **defaults)


ADD = inst("ADD")
VOP = inst("VOP", unit="VXU", issue_class="VXU.simd")
DIV = inst("DIV", unit="BFU", issue_class="BFU.bfp", latency=20, pipelined=False)
SER = inst("SER", unit="SYS", issue_class="SYS.control", latency=40,
           serializing=True, group_alone=True)
BR = inst("BR", unit="BRU", issue_class="BRU.branch", ends_group=True)
CFG = default_core_config()


class TestDispatchBound:
    def test_full_width_ipc(self):
        profile = analyze_loop([ADD, VOP, BR] * 2, CFG)
        assert profile.ipc == pytest.approx(3.0)
        assert profile.bottleneck == "dispatch"
        assert profile.avg_group_size == 3.0

    def test_branch_only_loop(self):
        profile = analyze_loop([BR] * 4, CFG)
        assert profile.ipc == pytest.approx(1.0)


class TestUnitBound:
    def test_single_instance_unit_saturates(self):
        # 3 vector µops/iteration vs 1 VXU pipe: 3 cycles/iteration.
        profile = analyze_loop([VOP, VOP, VOP], CFG)
        assert profile.cycles == pytest.approx(3.0)
        assert profile.bottleneck == "unit:VXU"

    def test_two_instance_unit(self):
        # 6 FXU µops vs 2 pipes: 3 cycles; dispatch also needs 2 groups.
        profile = analyze_loop([ADD] * 6, CFG)
        assert profile.cycles == pytest.approx(3.0)

    def test_nonpipelined_occupancy(self):
        profile = analyze_loop([DIV], CFG)
        assert profile.cycles == pytest.approx(20.0)
        assert profile.ipc == pytest.approx(1 / 20)
        assert profile.bottleneck == "unit:BFU"

    def test_uops_multiply_unit_load(self):
        fat = inst("FAT", uops=4, unit="VXU", issue_class="VXU.simd")
        profile = analyze_loop([fat], CFG)
        assert profile.cycles == pytest.approx(4.0)
        assert profile.uops == 4


class TestSerialization:
    def test_serializing_dominates(self):
        profile = analyze_loop([SER], CFG)
        assert profile.cycles == pytest.approx(40.0)
        assert profile.bottleneck == "serialize"

    def test_serializing_with_work(self):
        profile = analyze_loop([SER, ADD, ADD, ADD], CFG)
        # 2 groups + 39 penalty cycles.
        assert profile.cycles == pytest.approx(41.0)


class TestErrors:
    def test_empty_body_rejected(self):
        with pytest.raises(UarchError):
            analyze_loop([], CFG)
