"""The fleet dispatcher: spawn-command transports, validation, and the
end-of-campaign fold.

Subprocess spawning itself is exercised by the CI chaos job (each
worker process rebuilds the experiment context — far too heavy for the
unit tier); here the fold runs over worker directories produced by
in-process :class:`FleetWorker` runs, which is the same contract.
"""

from __future__ import annotations

import json

import pytest

from repro.engine import CampaignManifest, ResultCache
from repro.engine.campaign import MANIFEST_NAME
from repro.errors import ConfigError
from repro.fleet import FleetDispatcher, FleetWorker
from repro.obs import Telemetry
from repro.plan import run_point_id


def make_dispatcher(campaign, chip, tmp_path, **kwargs):
    kwargs.setdefault("telemetry", Telemetry())
    return FleetDispatcher(
        campaign, chip, tmp_path / "fleet", ["worker", "cmd"], **kwargs
    )


class TestValidation:
    def test_needs_at_least_one_worker(self, campaign, tiny_context,
                                       tmp_path):
        with pytest.raises(ConfigError):
            make_dispatcher(campaign, tiny_context.chip, tmp_path, workers=0)

    def test_ssh_template_needs_command_slot(self, campaign, tiny_context,
                                             tmp_path):
        with pytest.raises(ConfigError):
            make_dispatcher(
                campaign, tiny_context.chip, tmp_path,
                ssh_template="ssh {host} run-it",
            )

    def test_hosts_need_a_transport(self, campaign, tiny_context, tmp_path):
        with pytest.raises(ConfigError):
            make_dispatcher(
                campaign, tiny_context.chip, tmp_path, hosts=["a", "b"]
            )

    def test_slurm_template_needs_command_slot(self, campaign, tiny_context,
                                               tmp_path):
        with pytest.raises(ConfigError, match="must contain"):
            make_dispatcher(
                campaign, tiny_context.chip, tmp_path,
                slurm_template="srun --ntasks=1 run-it",
            )

    def test_slurm_template_rejects_unknown_placeholder(self, campaign,
                                                        tiny_context,
                                                        tmp_path):
        with pytest.raises(ConfigError, match="unknown placeholder"):
            make_dispatcher(
                campaign, tiny_context.chip, tmp_path,
                slurm_template="srun --partition={queue} {command}",
            )

    def test_slurm_and_ssh_are_mutually_exclusive(self, campaign,
                                                  tiny_context, tmp_path):
        with pytest.raises(ConfigError, match="mutually"):
            make_dispatcher(
                campaign, tiny_context.chip, tmp_path,
                ssh_template="ssh {host} {command}",
                slurm_template="srun {command}",
            )


class TestSpawnCommand:
    def test_local_command_appends_worker_identity(self, campaign,
                                                   tiny_context, tmp_path):
        dispatcher = make_dispatcher(campaign, tiny_context.chip, tmp_path)
        command = dispatcher._spawn_command("w0", 0)
        assert command == [
            "worker", "cmd",
            "--worker-id", "w0",
            "--workdir", str(dispatcher.worker_dir("w0")),
        ]

    def test_ssh_template_wraps_and_round_robins_hosts(self, campaign,
                                                       tiny_context,
                                                       tmp_path):
        dispatcher = make_dispatcher(
            campaign, tiny_context.chip, tmp_path,
            hosts=["alpha", "beta"], ssh_template="ssh {host} {command}",
        )
        first = dispatcher._spawn_command("w0", 0)
        second = dispatcher._spawn_command("w1", 1)
        third = dispatcher._spawn_command("w2", 2)
        assert first[:2] == ["ssh", "alpha"]
        assert second[:2] == ["ssh", "beta"]
        assert third[:2] == ["ssh", "alpha"]  # wraps around
        assert first[2:] == [
            "worker", "cmd",
            "--worker-id", "w0",
            "--workdir", str(dispatcher.worker_dir("w0")),
        ]

    def test_slurm_template_wraps_with_job_name(self, campaign,
                                                tiny_context, tmp_path):
        """The slurm transport is a foreground launcher: the worker
        command is substituted whole into ``{command}`` and ``{job}``
        names the allocation after the campaign dir and worker."""
        dispatcher = make_dispatcher(
            campaign, tiny_context.chip, tmp_path,
            slurm_template="srun --ntasks=1 --job-name={job} {command}",
        )
        command = dispatcher._spawn_command("w3", 3)
        assert command[:2] == ["srun", "--ntasks=1"]
        assert command[2] == (
            f"--job-name=repro-{dispatcher.campaign_dir.name}-w3"
        )
        assert command[3:] == [
            "worker", "cmd",
            "--worker-id", "w3",
            "--workdir", str(dispatcher.worker_dir("w3")),
        ]

    def test_slurm_template_without_job_slot(self, campaign, tiny_context,
                                             tmp_path):
        dispatcher = make_dispatcher(
            campaign, tiny_context.chip, tmp_path,
            slurm_template="srun {command}",
        )
        assert dispatcher._spawn_command("w0", 0) == [
            "srun",
            "worker", "cmd",
            "--worker-id", "w0",
            "--workdir", str(dispatcher.worker_dir("w0")),
        ]


class TestFold:
    def _worker_run(self, campaign, chip, dispatcher, worker_id,
                    telemetry=None):
        """One in-process worker writing the exact directory layout a
        subprocess worker would leave behind."""
        workdir = dispatcher.worker_dir(worker_id)
        workdir.mkdir(parents=True, exist_ok=True)
        telemetry = telemetry or Telemetry()
        private = CampaignManifest(workdir / MANIFEST_NAME)
        private.bind_campaign({
            "plan": campaign.fingerprint(), "shard": f"fleet:{worker_id}",
        })
        worker = FleetWorker(
            campaign, chip, dispatcher.manifest,
            worker_id=worker_id,
            cache=ResultCache(cache_dir=workdir / "cache"),
            private_manifest=private,
            batch=2, faults=None, telemetry=telemetry,
        )
        summary = worker.run()
        (workdir / "fleet-telemetry.json").write_text(
            json.dumps(telemetry.merge_payload())
        )
        (workdir / "events.jsonl").write_text(
            json.dumps({
                "event": "fleet.worker.started", "ts": 1.0,
                "worker": worker_id, "pid": 1000, "host": "h",
            }) + "\n"
        )
        return summary

    def test_fold_unions_caches_manifests_and_telemetry(self, campaign,
                                                        tiny_context,
                                                        tmp_path):
        dispatcher = make_dispatcher(campaign, tiny_context.chip, tmp_path)
        plan_fp = campaign.fingerprint()
        dispatcher.campaign_dir.mkdir(parents=True)
        dispatcher.manifest.bind_campaign({"plan": plan_fp, "shard": None})
        first = self._worker_run(
            campaign, tiny_context.chip, dispatcher, "w0"
        )
        second = self._worker_run(
            campaign, tiny_context.chip, dispatcher, "w1"
        )
        # w0 drained the campaign; w1 found it exhausted.
        assert first["completed"] == campaign.total_unique
        assert second["completed"] == 0

        report = dispatcher._fold(plan_fp)
        assert report.runs == campaign.total_unique
        assert report.executed == campaign.total_unique
        assert report.failed == 0
        assert dispatcher.unfinished == []
        assert dispatcher.poisoned == []
        assert report.by_worker["w0"]["completed"] == campaign.total_unique
        summary = report.summary()
        assert summary["by_worker"]["w0"]["completed"] == campaign.total_unique
        assert summary["stolen"] == 0
        # The folded cache holds every run of the campaign.
        folded = ResultCache(cache_dir=dispatcher.campaign_dir / "cache")
        assert all(
            folded.peek_bytes(fp) is not None for fp in campaign.unique
        )
        # The healed shared manifest records everything, plus the fold.
        completed = dispatcher.manifest.completed
        assert {run_point_id(fp) for fp in campaign.unique} <= completed
        assert "shard:fleet" in completed
        # Worker telemetry folded into the dispatcher's counters.
        assert dispatcher.telemetry.counter("fleet.claims") == (
            campaign.total_unique
        )
        # Event logs concatenated, one start line per worker.
        lines = [
            json.loads(line)
            for line in (dispatcher.campaign_dir / "events.jsonl")
            .read_text().splitlines()
        ]
        assert {e["worker"] for e in lines
                if e["event"] == "fleet.worker.started"} == {"w0", "w1"}

    def test_fold_reports_unfinished_and_poisoned(self, campaign,
                                                  tiny_context, tmp_path):
        dispatcher = make_dispatcher(campaign, tiny_context.chip, tmp_path)
        plan_fp = campaign.fingerprint()
        dispatcher.campaign_dir.mkdir(parents=True)
        dispatcher.manifest.bind_campaign({"plan": plan_fp, "shard": None})
        points = [run_point_id(fp) for fp in campaign.unique]
        # Poison one point the hard way: three expired victims.
        now = 1000.0
        for victim in ("a", "b", "c"):
            dispatcher.manifest.claim_batch(
                points[:1], worker=victim, lease_s=1.0, now=now
            )
            now += 10.0
        decision = dispatcher.manifest.claim_batch(
            points[:1], worker="d", poison_after=3, now=now
        )
        assert decision.poisoned == points[:1]
        report = dispatcher._fold(plan_fp)
        assert len(dispatcher.unfinished) == campaign.total_unique
        assert len(dispatcher.poisoned) == 1
        assert report.executed == 0
