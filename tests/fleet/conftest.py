"""Fleet test fixtures: a minimal compiled campaign over the cheap
experiment context (6 unique runs — small enough to execute in-process
several times, large enough to batch, steal, and account)."""

from __future__ import annotations

import pytest

from repro.experiments import compile_campaign
from repro.experiments.common import ExperimentContext
from repro.machine.runner import RunOptions


@pytest.fixture(scope="module")
def tiny_context(generator, chip):
    return ExperimentContext(
        generator=generator,
        chip=chip,
        options=RunOptions(segments=2, base_samples=1024),
        freq_points_per_decade=1,
        delta_i_placements=1,
        misalignment_assignments=1,
    )


@pytest.fixture(scope="module")
def campaign(tiny_context):
    return compile_campaign(["fig7a"], tiny_context)
