"""The fleet live plane: worker sidecars and in-flight aggregation."""

from __future__ import annotations

import json

from repro.engine import CampaignManifest
from repro.fleet import (
    LIVE_SIDECAR_NAME,
    LIVE_STATUS_NAME,
    FleetLiveAggregator,
    load_live_status,
)
from repro.obs import Telemetry

from .test_worker import make_worker


def _write_sidecar(campaign_dir, worker_id, state, *, summary=None,
                   counters=None, ts=0.0, point=None, held=()):
    record = {
        "ts": ts,
        "worker": worker_id,
        "pid": 1234,
        "host": "testhost",
        "state": state,
        "point": point,
        "held": list(held),
        "summary": {"worker": worker_id, "claimed": 0, "stolen": 0,
                    "completed": 0, "failed": 0, "released": 0,
                    "poisoned": 0, "serve_hits": 0, "lost_leases": 0,
                    **(summary or {})},
        "telemetry": {"counters": dict(counters or {}), "timers": {},
                      "histograms": {}, "events": []},
    }
    workdir = campaign_dir / "workers" / worker_id
    workdir.mkdir(parents=True, exist_ok=True)
    (workdir / LIVE_SIDECAR_NAME).write_text(json.dumps(record))


class _Sink:
    def __init__(self):
        self.records = []

    def emit(self, event, **fields):
        self.records.append({"event": event, **fields})


class TestAggregator:
    def test_transitions_detected_across_polls(self, tmp_path):
        telemetry = Telemetry()
        sink = _Sink()
        telemetry.enable_tracing(events=sink)
        agg = FleetLiveAggregator(tmp_path, telemetry=telemetry)

        _write_sidecar(tmp_path, "w0", "claiming", ts=0.0)
        status = agg.poll(now=1.0)
        assert status["workers"]["w0"]["state"] == "claiming"
        assert [(t["from"], t["to"]) for t in status["transitions"]] == [
            (None, "claiming")
        ]

        _write_sidecar(tmp_path, "w0", "executing", ts=1.5,
                       point="run:abc", held=["run:abc"])
        status = agg.poll(now=2.0)
        assert [(t["from"], t["to"]) for t in status["transitions"]] == [
            (None, "claiming"), ("claiming", "executing")
        ]
        assert status["workers"]["w0"]["point"] == "run:abc"
        assert status["workers"]["w0"]["held"] == 1
        assert telemetry.counter("fleet.live.transitions") == 2
        events = [r for r in sink.records if r["event"] == "fleet.transition"]
        assert [e["to"] for e in events] == ["claiming", "executing"]

        # A poll with no change adds no transition.
        status = agg.poll(now=3.0)
        assert len(status["transitions"]) == 2

    def test_steals_observed_from_sidecars_and_manifest(self, tmp_path):
        """Steals surface mid-campaign from *either* side: the thief's
        sidecar summary, or the shared lease table (which survives the
        thief dying before its next flush)."""
        telemetry = Telemetry()
        agg = FleetLiveAggregator(tmp_path, telemetry=telemetry)
        _write_sidecar(tmp_path, "w1", "executing",
                       summary={"stolen": 2})
        status = agg.poll(now=1.0)
        assert status["observed_steals"] == 2
        assert telemetry.counter("fleet.live.observed_steals") == 2

        # The manifest now records more steals than any sidecar.
        manifest = CampaignManifest(tmp_path)
        manifest._update("run:x", {"status": "complete", "steals": 3})
        manifest._update("run:y", {"status": "complete", "steals": 1})
        status = agg.poll(now=2.0)
        assert status["observed_steals"] == 4
        assert telemetry.counter("fleet.live.observed_steals") == 4

    def test_status_file_counts_and_finalize(self, tmp_path):
        manifest = CampaignManifest(tmp_path)
        manifest._update("run:a", {"status": "complete"})
        manifest._update("run:b", {"status": "failed"})
        manifest._update("run:c", {"status": "poisoned"})
        agg = FleetLiveAggregator(tmp_path, total_runs=4,
                                  telemetry=Telemetry())
        status = agg.poll(now=5.0)
        assert status["phase"] == "running"
        assert status["counts"] == {"complete": 1, "failed": 1,
                                    "claimed": 0, "poisoned": 1}
        assert status["total_runs"] == 4
        # The file on disk is the same dict `top` will read.
        assert load_live_status(tmp_path) == status

        final = agg.finalize({"executed": 4})
        assert final["phase"] == "folded"
        assert final["report"] == {"executed": 4}
        assert load_live_status(tmp_path)["phase"] == "folded"

    def test_completion_rate_from_summed_worker_counters(self, tmp_path):
        agg = FleetLiveAggregator(tmp_path, telemetry=Telemetry())
        _write_sidecar(tmp_path, "w0", "executing",
                       counters={"fleet.completed": 0})
        assert agg.poll(now=0.0)["completion_rate"] is None  # baseline
        _write_sidecar(tmp_path, "w0", "executing",
                       counters={"fleet.completed": 10})
        status = agg.poll(now=4.0)
        assert status["completion_rate"] == 2.5

    def test_unreadable_sidecar_skipped(self, tmp_path):
        workdir = tmp_path / "workers" / "w9"
        workdir.mkdir(parents=True)
        (workdir / LIVE_SIDECAR_NAME).write_text("{torn")
        status = FleetLiveAggregator(
            tmp_path, telemetry=Telemetry()
        ).poll(now=1.0)
        assert status["workers"] == {}

    def test_load_live_status_missing_is_none(self, tmp_path):
        assert load_live_status(tmp_path) is None
        (tmp_path / LIVE_STATUS_NAME).write_text("[1,2]")
        assert load_live_status(tmp_path) is None


class TestWorkerSidecar:
    def test_worker_flushes_live_sidecar_through_its_run(
        self, campaign, tiny_context, tmp_path
    ):
        live_path = tmp_path / "workers" / "w0" / LIVE_SIDECAR_NAME
        live_path.parent.mkdir(parents=True)
        private = CampaignManifest(tmp_path / "w0-manifest.json")
        worker = make_worker(
            campaign, tiny_context.chip, tmp_path,
            private_manifest=private,
            live_path=live_path,
            flush_s=0.05,
        )
        summary = worker.run()
        record = json.loads(live_path.read_text())
        # The final flush happens after the summary is complete.
        assert record["worker"] == "w0"
        assert record["state"] == "stopped"
        assert record["summary"]["completed"] == summary["completed"]
        assert record["held"] == []
        assert record["point"] is None
        counters = record["telemetry"]["counters"]
        assert counters["fleet.completed"] == campaign.total_unique

        # The aggregator folds the real sidecar without adaptation.
        agg = FleetLiveAggregator(tmp_path, telemetry=Telemetry(),
                                  total_runs=campaign.total_unique)
        status = agg.poll()
        assert status["workers"]["w0"]["completed"] == summary["completed"]
        assert status["counts"]["complete"] == campaign.total_unique
