"""The fleet worker loop, in-process: claim → execute → checkpoint →
renew, stealing, chaos hooks, drain, and the serve probe.

These tests run real simulations through :class:`FleetWorker` against
the 6-run tiny campaign; chaos that would kill a real process goes
through the ``exit_fn`` seam so the suite survives its own faults.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.engine import CampaignManifest, ResultCache
from repro.faults import FaultPlan
from repro.fleet import KILL_EXIT_STATUS, FleetWorker
from repro.obs import Telemetry
from repro.plan import execute_plan, run_point_id


def make_worker(campaign, chip, tmp_path, worker_id="w0", **kwargs):
    telemetry = kwargs.pop("telemetry", None) or Telemetry()
    manifest = kwargs.pop(
        "manifest", None
    ) or CampaignManifest(tmp_path / "campaign-manifest.json")
    kwargs.setdefault(
        "cache",
        ResultCache(cache_dir=tmp_path / worker_id / "cache",
                    telemetry=telemetry),
    )
    kwargs.setdefault("faults", None)
    kwargs.setdefault("batch", 2)
    kwargs.setdefault("lease_s", 30.0)
    return FleetWorker(
        campaign, chip, manifest,
        worker_id=worker_id, telemetry=telemetry, **kwargs,
    )


def points_of(campaign) -> list[str]:
    return [run_point_id(fp) for fp in campaign.unique]


class TestWorkerLoop:
    def test_single_worker_completes_campaign(self, campaign, tiny_context,
                                              tmp_path):
        private = CampaignManifest(tmp_path / "w0-manifest.json")
        worker = make_worker(
            campaign, tiny_context.chip, tmp_path, private_manifest=private
        )
        summary = worker.run()
        assert summary["completed"] == campaign.total_unique
        assert summary["claimed"] == campaign.total_unique
        assert summary["stolen"] == summary["failed"] == 0
        assert worker.manifest.completed >= set(points_of(campaign))
        assert private.completed >= set(points_of(campaign))
        assert worker.manifest.fleet_accounting()["w0"] == {
            "completed": campaign.total_unique, "stolen": 0, "failed": 0,
        }
        assert worker.telemetry.counter("fleet.claims") == campaign.total_unique
        assert worker.telemetry.counter("fleet.completed") == campaign.total_unique

    def test_fleet_results_are_byte_identical_to_serial(self, campaign,
                                                        tiny_context,
                                                        tmp_path):
        """The acceptance property in miniature: a fleet execution's
        cached payloads are byte-for-byte the serial execution's."""
        serial = ResultCache(cache_dir=tmp_path / "serial")
        report = execute_plan(
            campaign, tiny_context.chip, cache=serial, executor="serial"
        )
        assert report.executed == campaign.total_unique
        worker = make_worker(campaign, tiny_context.chip, tmp_path)
        worker.run()
        for fingerprint in campaign.unique:
            expected = serial.peek_bytes(fingerprint)
            assert expected is not None
            assert worker.cache.peek_bytes(fingerprint) == expected

    def test_survivor_steals_expired_leases(self, campaign, tiny_context,
                                            tmp_path):
        manifest = CampaignManifest(tmp_path / "campaign-manifest.json")
        stale = manifest.claim_batch(
            points_of(campaign), worker="ghost", limit=99,
            lease_s=1.0, now=time.time() - 1000.0,
        )
        assert len(stale.claimed) == campaign.total_unique
        worker = make_worker(
            campaign, tiny_context.chip, tmp_path, manifest=manifest
        )
        summary = worker.run()
        assert summary["stolen"] == campaign.total_unique
        assert summary["completed"] == campaign.total_unique
        accounting = manifest.fleet_accounting()["w0"]
        assert accounting["stolen"] == campaign.total_unique
        assert worker.telemetry.counter("fleet.steals") == campaign.total_unique


class TestChaosHooks:
    def test_injected_kill_fires_through_exit_seam(self, campaign,
                                                   tiny_context, tmp_path):
        """kill rate 1.0: the worker 'dies' right after its first claim
        commits (the stub drains instead), leaving released claims a
        successor picks up — the end-to-end crash/recovery story."""
        exits: list[int] = []
        manifest = CampaignManifest(tmp_path / "campaign-manifest.json")
        killed = make_worker(
            campaign, tiny_context.chip, tmp_path, worker_id="victim",
            manifest=manifest,
            faults=FaultPlan(seed=1, worker_kill_rate=1.0),
        )

        def die(status: int) -> None:
            exits.append(status)
            killed.drain()

        killed._exit = die
        summary = killed.run()
        assert exits == [KILL_EXIT_STATUS]
        assert summary["completed"] == 0
        assert summary["released"] == summary["claimed"] > 0
        assert manifest.claims() == {}  # drain returned them all
        survivor = make_worker(
            campaign, tiny_context.chip, tmp_path, worker_id="survivor",
            manifest=manifest,
        )
        rescue = survivor.run()
        assert rescue["completed"] == campaign.total_unique
        assert rescue["stolen"] == 0  # released, not expired: no steal
        assert manifest.completed >= set(points_of(campaign))

    def test_lease_corruption_never_wedges_the_campaign(self, campaign,
                                                        tiny_context,
                                                        tmp_path):
        worker = make_worker(
            campaign, tiny_context.chip, tmp_path,
            faults=FaultPlan(seed=2, lease_corrupt_rate=1.0),
        )
        summary = worker.run()
        assert worker.telemetry.counter("fleet.lease_corrupted") >= 1
        assert summary["completed"] == campaign.total_unique
        assert worker.manifest.completed >= set(points_of(campaign))


class TestHeartbeat:
    def _beat(self, campaign, tiny_context, tmp_path, faults, period=0.3):
        manifest = CampaignManifest(tmp_path / "campaign-manifest.json")
        worker = make_worker(
            campaign, tiny_context.chip, tmp_path, manifest=manifest,
            faults=faults, lease_s=60.0, heartbeat_s=0.02,
        )
        held = points_of(campaign)[:2]
        manifest.claim_batch(held, worker="w0", lease_s=60.0)
        before = {p: manifest.claims()[p]["deadline"] for p in held}
        worker._held.update(held)
        thread = threading.Thread(target=worker._heartbeat_loop, daemon=True)
        thread.start()
        time.sleep(period)
        worker._hb_stop.set()
        thread.join(5.0)
        return worker, manifest, before, held

    def test_heartbeat_renews_held_leases(self, campaign, tiny_context,
                                          tmp_path):
        worker, manifest, before, held = self._beat(
            campaign, tiny_context, tmp_path, faults=None
        )
        assert worker.summary["renewals"] > 0
        after = manifest.claims()
        assert all(after[p]["deadline"] > before[p] for p in held)

    def test_heartbeat_stall_skips_renewal(self, campaign, tiny_context,
                                           tmp_path):
        worker, manifest, before, held = self._beat(
            campaign, tiny_context, tmp_path,
            faults=FaultPlan(seed=3, heartbeat_stall_rate=1.0),
        )
        assert worker.summary["stalls"] > 0
        assert worker.summary["renewals"] == 0
        after = manifest.claims()
        assert all(after[p]["deadline"] == before[p] for p in held)


class TestServeProbe:
    def test_unreachable_endpoint_degrades_once(self, campaign,
                                                tiny_context, tmp_path):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        worker = make_worker(
            campaign, tiny_context.chip, tmp_path,
            serve=("127.0.0.1", dead_port),
        )
        summary = worker.run()
        assert worker._serve_down is True
        assert summary["serve_hits"] == 0
        assert summary["completed"] == campaign.total_unique

    def test_warm_endpoint_feeds_the_fleet(self, campaign, tiny_context,
                                           tmp_path):
        """A serve endpoint whose disk tier already holds the campaign
        answers every fetch — the fleet executes nothing."""
        from repro.serve import SimulationService, start_server

        telemetry = Telemetry()
        warm = ResultCache(cache_dir=tmp_path / "serve-cache")
        execute_plan(
            campaign, tiny_context.chip, cache=warm, executor="serial"
        )
        service = SimulationService(
            tiny_context.chip, tiny_context.options,
            cache=warm, executor="serial", telemetry=Telemetry(),
        )
        server, thread = start_server(service, port=0)
        try:
            worker = make_worker(
                campaign, tiny_context.chip, tmp_path,
                serve=("127.0.0.1", server.port), telemetry=telemetry,
            )
            summary = worker.run()
        finally:
            server.shutdown()
            server.server_close()
            thread.join(10.0)
            service.stop()
        assert summary["serve_hits"] == campaign.total_unique
        assert summary["completed"] == campaign.total_unique
        assert telemetry.counter("engine.runs_executed") == 0
        assert telemetry.counter("fleet.serve_hits") == campaign.total_unique
