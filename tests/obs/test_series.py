"""Windowed telemetry series: deltas, rates, rolling percentiles."""

from __future__ import annotations

import pytest

from repro.obs import (
    BUCKET_BOUNDS,
    Telemetry,
    TelemetrySeries,
    bucket_percentile,
    series_state,
)


def _bucket_of(value: float) -> int:
    for index, bound in enumerate(BUCKET_BOUNDS):
        if value <= bound:
            return index
    return len(BUCKET_BOUNDS)


# -- bucket_percentile ----------------------------------------------------
def test_bucket_percentile_empty_is_none():
    assert bucket_percentile([0] * (len(BUCKET_BOUNDS) + 1), 95) is None
    assert bucket_percentile([], 50) is None


def test_bucket_percentile_single_bucket_interpolates_within_bounds():
    counts = [0] * (len(BUCKET_BOUNDS) + 1)
    counts[3] = 10
    p50 = bucket_percentile(counts, 50)
    lower = BUCKET_BOUNDS[2]
    upper = BUCKET_BOUNDS[3]
    assert lower < p50 <= upper


def test_bucket_percentile_is_monotone_in_p():
    counts = [0] * (len(BUCKET_BOUNDS) + 1)
    counts[2] = 90
    counts[8] = 10
    values = [bucket_percentile(counts, p) for p in (10, 50, 90, 95, 99)]
    assert values == sorted(values)
    # The slow 10% tail lands in bucket 8's range, not bucket 2's.
    assert values[-1] > BUCKET_BOUNDS[7]


def test_bucket_percentile_overflow_clamps_to_last_bound():
    counts = [0] * (len(BUCKET_BOUNDS) + 1)
    counts[-1] = 5  # all observations beyond the largest finite bound
    assert bucket_percentile(counts, 99) == BUCKET_BOUNDS[-1]


def test_bucket_percentile_rejects_out_of_range_p():
    with pytest.raises(ValueError):
        bucket_percentile([1], 101)
    with pytest.raises(ValueError):
        bucket_percentile([1], -1)


# -- series_state ---------------------------------------------------------
def test_series_state_from_telemetry_carries_exact_buckets():
    telemetry = Telemetry()
    telemetry.increment("runs", 3)
    telemetry.observe("lat", 0.01)
    state = series_state(telemetry)
    assert state["counters"]["runs"] == 3
    entry = state["histograms"]["lat"]
    assert entry["count"] == 1
    assert sum(entry["buckets"]) == 1
    assert entry["buckets"][_bucket_of(0.01)] == 1


def test_series_state_from_snapshot_dict_skips_empty_histograms():
    snapshot = {
        "counters": {"x": 1},
        "timers": {"t": 0.5},
        "histograms": {
            "empty": {"count": 0},
            "full": {"count": 2, "total": 0.2, "buckets": [0, 2]},
        },
    }
    state = series_state(snapshot)
    assert "empty" not in state["histograms"]
    assert state["histograms"]["full"]["buckets"] == [0, 2]
    assert state["timers"]["t"] == 0.5


def test_series_state_rejects_non_source():
    with pytest.raises(TypeError):
        series_state(42)


# -- TelemetrySeries ------------------------------------------------------
def test_first_tick_baselines_and_returns_none():
    telemetry = Telemetry()
    series = TelemetrySeries(telemetry)
    assert series.tick(now=100.0) is None
    assert len(series) == 0


def test_window_rate_and_delta_from_counter_deltas():
    telemetry = Telemetry()
    series = TelemetrySeries(telemetry)
    telemetry.increment("serve.requests", 10)
    series.tick(now=100.0)
    telemetry.increment("serve.requests", 20)
    window = series.tick(now=104.0)
    assert window.delta("serve.requests") == 20
    assert window.rate("serve.requests") == pytest.approx(5.0)
    assert series.rate("serve.requests") == pytest.approx(5.0)


def test_windowed_percentile_sees_only_the_window():
    """A burst of slow observations must dominate the *window*
    percentile even against a long fast history — the exact failure
    mode of cumulative percentiles."""
    telemetry = Telemetry()
    series = TelemetrySeries(telemetry)
    for _ in range(1000):
        telemetry.observe("lat", 0.001)
    series.tick(now=10.0)
    for _ in range(10):
        telemetry.observe("lat", 1.0)
    window = series.tick(now=15.0)
    assert window.hist_count("lat") == 10
    assert window.percentile("lat", 50) > 0.1  # the slow burst, alone


def test_counter_reset_rebaselines_instead_of_negative_rates():
    series = TelemetrySeries()
    series.tick_state({"counters": {"x": 100}, "timers": {},
                       "histograms": {}}, now=1.0)
    # Restarted process: the counter went backwards.
    assert series.tick_state(
        {"counters": {"x": 5}, "timers": {}, "histograms": {}}, now=2.0
    ) is None
    assert series.resets == 1
    window = series.tick_state(
        {"counters": {"x": 8}, "timers": {}, "histograms": {}}, now=3.0
    )
    assert window.delta("x") == 3


def test_ring_buffer_is_bounded():
    series = TelemetrySeries(capacity=3)
    for i in range(10):
        series.tick_state(
            {"counters": {"x": i}, "timers": {}, "histograms": {}},
            now=float(i),
        )
    assert len(series) == 3
    assert series.ticks == 10


def test_pooled_merges_counters_and_buckets():
    telemetry = Telemetry()
    series = TelemetrySeries(telemetry)
    telemetry.increment("n", 1)
    telemetry.observe("lat", 0.01)
    series.tick(now=0.0)
    for now in (1.0, 2.0, 3.0):
        telemetry.increment("n", 2)
        telemetry.observe("lat", 0.01)
        series.tick(now=now)
    pooled = series.pooled(k=3)
    assert pooled.delta("n") == 6
    assert pooled.hist_count("lat") == 3
    assert pooled.duration_s == pytest.approx(3.0)
    assert series.percentile("lat", 95, k=3) <= BUCKET_BOUNDS[_bucket_of(0.01)]


def test_over_threshold_fraction_counts_bad_events():
    telemetry = Telemetry()
    series = TelemetrySeries(telemetry)
    series.tick(now=0.0)
    for _ in range(9):
        telemetry.observe("lat", 0.001)
    telemetry.observe("lat", 2.0)
    window = series.tick(now=5.0)
    # The threshold lands on a bucket bound, so the split is exact.
    threshold = BUCKET_BOUNDS[_bucket_of(0.001)]
    assert window.over_threshold_fraction("lat", threshold) == pytest.approx(0.1)
    assert window.over_threshold_fraction("lat", 10.0) == pytest.approx(0.0)
    assert window.over_threshold_fraction("missing", 1.0) == 0.0


def test_tick_snapshot_diffs_wire_shapes():
    """`top --serve` diffs successive remote metrics replies."""
    series = TelemetrySeries()
    reply = {
        "counters": {"serve.requests": 4},
        "timers": {},
        "histograms": {
            "serve.request.seconds":
                {"count": 4, "total": 0.04, "mean": 0.01,
                 "buckets": [0, 0, 0, 4]},
        },
    }
    series.tick_snapshot(reply, now=0.0)
    later = {
        "counters": {"serve.requests": 10},
        "timers": {},
        "histograms": {
            "serve.request.seconds":
                {"count": 10, "total": 0.1, "mean": 0.01,
                 "buckets": [0, 0, 0, 10]},
        },
    }
    window = series.tick_snapshot(later, now=3.0)
    assert window.rate("serve.requests") == pytest.approx(2.0)
    assert window.hist_count("serve.request.seconds") == 6


def test_window_to_dict_round_trips_json_shape():
    series = TelemetrySeries()
    series.tick_state({"counters": {"x": 0}, "timers": {"t": 0.0},
                       "histograms": {}}, now=0.0)
    window = series.tick_state(
        {"counters": {"x": 2}, "timers": {"t": 1.5}, "histograms": {}},
        now=2.0,
    )
    record = window.to_dict()
    assert record["counters"] == {"x": 2}
    assert record["timers"]["t"] == pytest.approx(1.5)


def test_tick_without_source_raises():
    with pytest.raises(ValueError):
        TelemetrySeries().tick()
