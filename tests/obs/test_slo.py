"""Declarative SLOs: validation, burn-rate evaluation, emission."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    SLO,
    SloPolicy,
    Telemetry,
    TelemetrySeries,
    default_serve_slos,
)


def _latency_slo(threshold_s=0.01, budget=0.1, name="lat"):
    return SLO(name=name, kind="latency", budget=budget,
               histogram="lat", threshold_s=threshold_s)


def _window(observations=(), counters=None, duration=5.0):
    """A SeriesWindow built the way production builds them: two ticks
    of a real Telemetry."""
    telemetry = Telemetry()
    series = TelemetrySeries(telemetry)
    series.tick(now=0.0)
    for value in observations:
        telemetry.observe("lat", value)
    for name, count in (counters or {}).items():
        telemetry.increment(name, count)
    return series.tick(now=duration)


# -- validation -----------------------------------------------------------
def test_slo_rejects_bad_kind_budget_and_missing_fields():
    with pytest.raises(ValueError):
        SLO(name="x", kind="availability", budget=0.1)
    with pytest.raises(ValueError):
        SLO(name="x", kind="latency", budget=0.0,
            histogram="h", threshold_s=1.0)
    with pytest.raises(ValueError):
        SLO(name="x", kind="latency", budget=0.1)  # no histogram
    with pytest.raises(ValueError):
        SLO(name="x", kind="error_rate", budget=0.1)  # no numerator


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown fields"):
        SLO.from_dict({"name": "x", "kind": "latency", "budget": 0.1,
                       "histogram": "h", "threshold_s": 1.0,
                       "serverity": "high"})


def test_policy_rejects_duplicate_names():
    with pytest.raises(ValueError, match="duplicate"):
        SloPolicy([_latency_slo(), _latency_slo()])


# -- evaluation -----------------------------------------------------------
def test_latency_slo_within_budget():
    window = _window([0.001] * 99 + [1.0])  # 1% slow vs 10% budget
    status = _latency_slo(budget=0.1).evaluate(window)
    assert status.events == 100
    assert status.sli == pytest.approx(0.01)
    assert status.burn_rate == pytest.approx(0.1)
    assert not status.violated


def test_latency_slo_burns_and_violates():
    window = _window([0.001] * 50 + [1.0] * 50)  # 50% slow vs 10% budget
    status = _latency_slo(budget=0.1).evaluate(window)
    assert status.burn_rate == pytest.approx(5.0)
    assert status.violated


def test_empty_window_never_violates():
    window = _window([])  # no observations at all
    status = _latency_slo().evaluate(window)
    assert status.events == 0
    assert status.sli == 0.0
    assert not status.violated


def test_error_rate_slo():
    window = _window(counters={"fail": 3, "ok": 97, "total": 100})
    slo = SLO(name="errors", kind="error_rate", budget=0.01,
              numerator="fail", denominator=("total",))
    status = slo.evaluate(window)
    assert status.sli == pytest.approx(0.03)
    assert status.burn_rate == pytest.approx(3.0)
    assert status.violated
    assert status.events == 100


def test_status_to_dict_is_json_friendly():
    status = _latency_slo().evaluate(_window([1.0]))
    record = status.to_dict()
    json.dumps(record)
    assert record["slo"] == "lat"
    assert record["violated"] is True
    assert record["kind"] == "latency"


# -- policy ---------------------------------------------------------------
def test_policy_from_spec_and_file_round_trip(tmp_path):
    spec = {"slos": [
        {"name": "lat", "kind": "latency", "budget": 0.05,
         "histogram": "serve.request.seconds", "threshold_s": 0.25},
        {"name": "err", "kind": "error_rate", "budget": 0.01,
         "numerator": "serve.failures",
         "denominator": ["serve.requests"]},
    ]}
    path = tmp_path / "slo.json"
    path.write_text(json.dumps(spec))
    policy = SloPolicy.from_file(path)
    assert len(policy) == 2
    assert [slo.to_dict() for slo in policy] == [
        SLO.from_dict(entry).to_dict() for entry in spec["slos"]
    ]


def test_policy_evaluate_none_window_is_empty():
    assert SloPolicy([_latency_slo()]).evaluate(None) == []


class _Sink:
    """Minimal event sink (the EventLog seam `Telemetry.emit` writes to)."""

    def __init__(self):
        self.records = []

    def emit(self, event, **fields):
        self.records.append({"event": event, **fields})


def test_evaluate_and_emit_accounts_violations():
    telemetry = Telemetry()
    sink = _Sink()
    telemetry.enable_tracing(events=sink)
    policy = SloPolicy([_latency_slo(budget=0.01, name="tight"),
                        _latency_slo(budget=1.0, name="loose")])
    window = _window([1.0] * 10)  # everything slow
    statuses = policy.evaluate_and_emit(window, telemetry)
    assert [s.violated for s in statuses] == [True, False]
    assert telemetry.counters["slo.evaluations"] == 1
    assert telemetry.counters["slo.violations"] == 1
    assert telemetry.counters["slo.violations.tight"] == 1
    violations = [r for r in sink.records if r["event"] == "slo.violation"]
    assert len(violations) == 1
    assert violations[0]["slo"] == "tight"


def test_default_serve_slos_cover_tiers_and_errors():
    policy = default_serve_slos()
    names = [slo.name for slo in policy]
    assert "hot-latency" in names
    assert "error-rate" in names
    # All default objectives are valid by construction and evaluable.
    window = _window([])
    assert len(policy.evaluate(window)) == len(policy)
