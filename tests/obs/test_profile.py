"""Profiler and Chrome-trace exporter tests (offline, synthetic traces)."""

from __future__ import annotations

import json

from repro.obs import (
    CampaignProfile,
    EventLog,
    chrome_trace,
    export_chrome_trace,
    load_profile,
    render_profile,
)


def synthetic_trace(path):
    """A small but complete campaign trace: spans, cached and executed
    runs, a retry, a failure and a dropped point."""
    with EventLog(path) as log:
        log.emit("campaign.started", experiments=["fig7a"])
        log.emit("experiment.started", experiment="fig7a")
        log.emit("run.cached", run=("fsweep", 1))
        log.emit("run.scheduled", run=("fsweep", 2))
        log.emit("run.scheduled", run=("fsweep", 3))
        log.emit("run.started", run=("fsweep", 2))
        log.emit("run.completed", run=("fsweep", 2), dur_s=0.25, attempts=1)
        log.emit("run.started", run=("fsweep", 3))
        log.emit("run.retried", run=("fsweep", 3), retries=2)
        log.emit("run.completed", run=("fsweep", 3), dur_s=0.75, attempts=3)
        log.emit(
            "run.failed",
            run=("fsweep", 4),
            dur_s=0.1,
            attempts=3,
            error="SolverError: diverged",
        )
        log.emit(
            "point.dropped",
            sweep="fsweep",
            run=("fsweep", 4),
            error="SolverError: diverged",
        )
        log.emit(
            "span", name="session.execute", span_id=2, parent_id=1,
            start_s=100.2, dur_s=1.0,
        )
        log.emit(
            "span", name="experiment.fig7a", span_id=1, parent_id=None,
            start_s=100.0, dur_s=1.5,
        )
        log.emit("experiment.completed", experiment="fig7a")
        log.emit(
            "campaign.completed",
            status=0,
            snapshot={
                "counters": {
                    "engine.runs_executed": 2,
                    "engine.cache.hits": 1,
                    "engine.cache.misses": 2,
                    # 2 extra attempts on the retried success + 2 on
                    # the permanent failure.
                    "engine.retries": 4,
                    "engine.points_dropped": 1,
                },
            },
        )
    return path


class TestCampaignProfile:
    def test_digest(self, tmp_path):
        profile = load_profile(synthetic_trace(tmp_path / "events.jsonl"))
        assert profile.experiments == ["fig7a"]
        assert len(profile.completed_runs) == 2
        assert len(profile.failed_runs) == 1
        assert profile.cached == 1
        assert profile.scheduled == 2
        assert len(profile.dropped_points) == 1
        assert profile.run_seconds.count == 2
        assert profile.counter("engine.retries") == 4
        assert abs(profile.hit_rate() - 1 / 3) < 1e-9

    def test_span_tree_reconstruction(self, tmp_path):
        profile = load_profile(synthetic_trace(tmp_path / "events.jsonl"))
        (root,) = profile.span_roots
        assert root.name == "experiment.fig7a"
        assert [child.name for child in root.children] == ["session.execute"]

    def test_counters_derivable_without_final_snapshot(self, tmp_path):
        # A killed campaign never writes campaign.completed: the
        # profiler falls back to re-deriving counts from raw events.
        path = synthetic_trace(tmp_path / "events.jsonl")
        events = [
            e for e in load_profile(path).events
            if e["event"] != "campaign.completed"
        ]
        profile = CampaignProfile.from_events(events)
        assert profile.counter("engine.runs_executed") == 2
        assert profile.counter("engine.retries") == 4
        assert profile.counter("engine.points_dropped") == 1

    def test_slowest_and_hottest(self, tmp_path):
        profile = load_profile(synthetic_trace(tmp_path / "events.jsonl"))
        slowest = profile.slowest_runs(1)
        assert slowest[0]["dur_s"] == 0.75
        hot = profile.retry_hot_spots(5)
        assert all(int(e.get("attempts", 1)) > 1 for e in hot)
        assert len(hot) == 2  # the 3-attempt success and the failure


class TestRenderProfile:
    def test_render_carries_percentiles_and_span_tree(self, tmp_path):
        profile = load_profile(synthetic_trace(tmp_path / "events.jsonl"))
        text = render_profile(profile)
        assert "p50=" in text and "p95=" in text and "p99=" in text
        assert "experiment.fig7a" in text
        assert "session.execute" in text
        assert "retry hot spots" in text
        assert "dropped points (1)" in text
        assert "hit rate: 33.3%" in text

    def test_render_empty_trace(self):
        text = render_profile(CampaignProfile.from_events([]))
        assert "campaign profile" in text


class TestChromeTrace:
    def test_structure(self, tmp_path):
        events = load_profile(synthetic_trace(tmp_path / "e.jsonl")).events
        trace = chrome_trace(events)
        assert json.loads(json.dumps(trace)) == trace
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert {"M", "X", "i"} <= phases
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        # 2 spans + 2 completed runs.
        assert len(slices) == 4
        assert all(e["ts"] >= 0 for e in slices)
        assert all(e["dur"] >= 0 for e in slices)

    def test_run_slices_reconstruct_start(self, tmp_path):
        events = [
            {"ts": 10.0, "event": "run.completed", "run": "r", "dur_s": 2.0},
        ]
        trace = chrome_trace(events)
        (run_slice,) = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert run_slice["ts"] == 0.0  # 10.0 - 2.0 is the trace origin
        assert run_slice["dur"] == 2.0e6

    def test_export_writes_loadable_json(self, tmp_path):
        events = load_profile(synthetic_trace(tmp_path / "e.jsonl")).events
        out = export_chrome_trace(events, tmp_path / "trace.json")
        loaded = json.loads(out.read_text())
        assert "traceEvents" in loaded


class TestFleetLanes:
    def _names(self, trace) -> dict:
        return {
            e["tid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e.get("ph") == "M"
        }

    def test_one_lane_per_fleet_worker_id(self):
        """run.completed may carry a fleet worker-id string instead of
        a pid; each distinct id gets its own named lane."""
        events = [
            {"ts": 1.0, "event": "run.completed", "run": "a",
             "dur_s": 0.5, "worker": "w0"},
            {"ts": 2.0, "event": "run.completed", "run": "b",
             "dur_s": 0.5, "worker": "w1"},
        ]
        trace = chrome_trace(events)
        names = self._names(trace)
        assert "runs (worker w0)" in names.values()
        assert "runs (worker w1)" in names.values()
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len({e["tid"] for e in slices}) == 2

    def test_started_events_label_pid_lanes(self):
        """A folded fleet log maps executing pids back to the worker
        ids that owned them via fleet.worker.started."""
        events = [
            {"ts": 0.5, "event": "fleet.worker.started",
             "worker": "w7", "pid": 4242, "host": "h"},
            {"ts": 1.0, "event": "run.completed", "run": "a",
             "dur_s": 0.5, "worker": 4242},
        ]
        names = self._names(chrome_trace(events))
        assert "runs (w7 · worker 4242)" in names.values()

    def test_pid_lanes_sort_before_name_lanes(self):
        events = [
            {"ts": 1.0, "event": "run.completed", "run": "a",
             "dur_s": 0.1, "worker": "w0"},
            {"ts": 2.0, "event": "run.completed", "run": "b",
             "dur_s": 0.1, "worker": 99},
        ]
        trace = chrome_trace(events)
        lanes = {
            e["args"]["worker"]: e["tid"]
            for e in trace["traceEvents"]
            if e["ph"] == "X"
        }
        assert lanes[99] < lanes["w0"]
