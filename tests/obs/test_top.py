"""`repro-noise top` frame rendering (pure, no terminal)."""

from __future__ import annotations

from repro.obs.top import render_top


def _fleet_status(**overrides) -> dict:
    status = {
        "ts": 100.0,
        "tick": 7,
        "phase": "running",
        "total_runs": 50,
        "counts": {"complete": 25, "failed": 1, "claimed": 4,
                   "poisoned": 0},
        "leases": {"live": 4, "by_worker": {"w0": 2, "w1": 2}},
        "observed_steals": 3,
        "completion_rate": 2.5,
        "workers": {
            "w0": {"state": "executing", "held": 2, "completed": 12,
                   "stolen": 3, "failed": 0,
                   "point": "run:" + "f" * 40},
            "w1": {"state": "idle", "held": 2, "completed": 13,
                   "stolen": 0, "failed": 1, "point": None},
        },
        "transitions": [
            {"ts": 99.0, "worker": "w0", "from": None, "to": "starting"},
            {"ts": 99.5, "worker": "w0", "from": "starting",
             "to": "executing"},
        ],
    }
    status.update(overrides)
    return status


def _serve_reply() -> dict:
    return {
        "ok": True,
        "uptime_s": 30.0,
        "window_s": 5.0,
        "windows": 6,
        "hot": {"entries": 3, "capacity": 256},
        "metrics": {"counters": {
            "serve.requests": 10, "serve.tier.hot": 6,
            "serve.tier.executed": 4, "slo.violations": 2,
        }},
        "percentiles": {
            "serve.request.seconds":
                {"count": 10, "p50": 0.002, "p95": 0.5, "p99": 0.5},
            "serve.request.hot.seconds":
                {"count": 6, "p50": 0.001, "p95": 0.001, "p99": 0.001},
        },
        "slo": [
            {"slo": "hot-latency", "burn_rate": 0.2, "sli": 0.01,
             "events": 6, "violated": False},
            {"slo": "error-rate", "burn_rate": 4.0, "sli": 0.04,
             "events": 10, "violated": True},
        ],
    }


def test_empty_frame_points_at_flags():
    frame = render_top()
    assert "nothing to watch" in frame


def test_fleet_frame_shows_progress_steals_and_workers():
    frame = render_top(fleet_status=_fleet_status(), now=100.0)
    assert "phase=running" in frame
    assert "25/50" in frame
    assert "(50%)" in frame
    assert "steals observed=3" in frame
    assert "2.50 runs/s" in frame
    # Executing workers sort above idle ones.
    assert frame.index("w0") < frame.index("w1")
    assert "starting → executing" in frame
    # Long point ids are truncated, not wrapped.
    assert "f" * 40 not in frame


def test_fleet_frame_marks_stale_status():
    frame = render_top(fleet_status=_fleet_status(ts=90.0), now=100.0)
    assert "10.0s ago" in frame


def test_serve_frame_shows_tiers_percentiles_and_slo_burn():
    frame = render_top(serve_metrics=_serve_reply())
    assert "10 requests" in frame
    assert "hot=6" in frame
    assert "executed=4" in frame
    assert "hot-lru 3/256" in frame
    # Sub-second latencies render in ms.
    assert "2.0ms" in frame
    assert "500.0ms" in frame
    assert "VIOLATED" in frame
    assert "slo violations since start: 2" in frame


def test_combined_frame_holds_both_sections_and_errors():
    frame = render_top(
        fleet_status=_fleet_status(),
        serve_metrics=_serve_reply(),
        now=100.0,
        errors=["serve :4650: connection refused"],
    )
    assert "fleet · phase=running" in frame
    assert "serve · up 30s" in frame
    assert "! serve :4650: connection refused" in frame


def test_folded_phase_renders():
    frame = render_top(fleet_status=_fleet_status(phase="folded"),
                       now=100.0)
    assert "phase=folded" in frame
