"""``follow_profile``: live-tailing a campaign trace (profile --follow)."""

from __future__ import annotations

import json
import threading

from repro.obs import EventLog, follow_profile


def _record(event: str, **fields) -> str:
    payload = {"ts": 1.0, "event": event}
    payload.update(fields)
    return json.dumps(payload) + "\n"


def _drive(path, steps, *, interval=0.0):
    """Run follow_profile deterministically: each sleep() applies the
    next scripted append, so 'time passing' is fully scripted."""
    script = iter(steps)
    done = {"flag": False}

    def sleep(_):
        try:
            step = next(script)
        except StopIteration:
            done["flag"] = True
            return
        step()

    profiles = []
    for profile in follow_profile(
        path, interval=interval, stop=lambda: done["flag"], sleep=sleep
    ):
        profiles.append(profile)
    return profiles


def test_waits_for_missing_file_then_reads(tmp_path):
    path = tmp_path / "events.jsonl"

    def create():
        path.write_text(
            _record("campaign.started")
            + _record("run.completed", run="a", dur_s=0.5, attempts=1)
        )

    profiles = _drive(path, [create, lambda: None])
    # First yield: empty (file absent); later: both events.
    assert len(profiles[0].events) == 0
    assert len(profiles[-1].events) == 2
    assert len(profiles[-1].completed_runs) == 1


def test_incremental_refresh_only_on_new_events(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text(_record("run.completed", run="a", dur_s=0.1, attempts=1))

    def append():
        with path.open("a") as handle:
            handle.write(
                _record("run.completed", run="b", dur_s=0.2, attempts=1)
            )

    idle = lambda: None  # noqa: E731 - scripted no-op step
    profiles = _drive(path, [idle, append, idle, idle])
    # Yields only when something changed: initial read, then the append.
    assert [len(p.events) for p in profiles] == [1, 2]


def test_torn_tail_buffered_until_newline(tmp_path):
    """A half-written record (the live-writer race) must not be parsed
    or dropped: it completes on a later poll."""
    path = tmp_path / "events.jsonl"
    full = _record("run.completed", run="a", dur_s=0.5, attempts=1)
    head, tail = full[:25], full[25:]
    path.write_text(_record("campaign.started") + head)

    def finish_line():
        with path.open("a") as handle:
            handle.write(tail)

    profiles = _drive(path, [finish_line, lambda: None])
    assert len(profiles[0].events) == 1  # torn line withheld
    assert len(profiles[-1].events) == 2  # ...and later completed intact
    assert profiles[-1].completed_runs[0]["run"] == "a"


def test_stops_on_campaign_completed(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text(
        _record("campaign.started") + _record("campaign.completed", status=0)
    )
    # No stop callable, no scripted steps: termination must come from
    # the campaign.completed event itself.
    profiles = list(follow_profile(path, interval=0.0, sleep=lambda _: None))
    assert len(profiles) == 1
    assert profiles[0].events[-1]["event"] == "campaign.completed"


def test_concurrent_eventlog_writer_never_tears_a_record(tmp_path):
    """A real EventLog writer racing a real --follow reader: every
    record the reader ever surfaces must be complete and in order —
    the torn-tail buffering and the log's per-record flush together
    guarantee it."""
    path = tmp_path / "events.jsonl"
    log = EventLog(path)
    total = 200
    started = threading.Event()

    def write():
        started.set()
        for index in range(total):
            log.emit("run.completed", run=f"r{index}", dur_s=0.01,
                     attempts=1, seq=index)
        log.emit("campaign.completed", status=0)
        log.close()

    writer = threading.Thread(target=write)
    writer.start()
    started.wait(5.0)
    # Real polling loop: terminates via the campaign.completed record.
    profiles = list(follow_profile(path, interval=0.001))
    writer.join(timeout=10.0)
    assert not writer.is_alive()

    for profile in profiles:
        # Any intermediate view is a clean prefix: fully-parsed records
        # with every field intact (a torn tail would have dropped keys
        # or raised in json parsing and been skipped → gaps).
        seqs = [e["seq"] for e in profile.events
                if e["event"] == "run.completed"]
        assert seqs == list(range(len(seqs)))
    final = profiles[-1].events
    assert final[-1]["event"] == "campaign.completed"
    assert sum(e["event"] == "run.completed" for e in final) == total


def test_malformed_interior_line_skipped(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text(
        _record("campaign.started")
        + "{broken json}\n"
        + _record("campaign.completed", status=0)
    )
    profiles = list(follow_profile(path, interval=0.0, sleep=lambda _: None))
    assert [e["event"] for e in profiles[-1].events] == [
        "campaign.started", "campaign.completed"
    ]
