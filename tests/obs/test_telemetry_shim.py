"""The deprecated ``repro.telemetry`` shim: still re-exports, but warns."""

import importlib
import sys
import warnings


def test_shim_emits_deprecation_warning_and_reexports():
    sys.modules.pop("repro.telemetry", None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        shim = importlib.import_module("repro.telemetry")
    assert any(
        issubclass(w.category, DeprecationWarning) for w in caught
    ), "importing repro.telemetry must emit DeprecationWarning"

    from repro.obs import Telemetry, get_telemetry

    assert shim.Telemetry is Telemetry
    assert shim.get_telemetry is get_telemetry
