"""The deprecated ``repro.telemetry`` shim: still re-exports, but warns
exactly once per process (module-level warning, cached import)."""

import importlib
import subprocess
import sys
import warnings


def test_shim_emits_deprecation_warning_and_reexports():
    sys.modules.pop("repro.telemetry", None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        shim = importlib.import_module("repro.telemetry")
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1, (
        "importing repro.telemetry must emit exactly one "
        f"DeprecationWarning (got {len(deprecations)})"
    )
    assert "repro.obs" in str(deprecations[0].message)

    from repro.obs import Telemetry, get_telemetry

    assert shim.Telemetry is Telemetry
    assert shim.get_telemetry is get_telemetry


def test_shim_warns_exactly_once_across_reimports():
    """A second import of the (cached) shim must stay silent — the
    warning fires at module execution, not at every import site."""
    sys.modules.pop("repro.telemetry", None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        importlib.import_module("repro.telemetry")
        importlib.import_module("repro.telemetry")
        from repro import telemetry  # noqa: F401 - third import site
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1, (
        "re-importing the cached shim must not warn again "
        f"(got {len(deprecations)} warnings)"
    )


def test_no_internal_consumer_triggers_the_shim():
    """Importing the whole library (and the serve/CLI layers) in a
    fresh interpreter must not pull in repro.telemetry: every in-tree
    consumer has migrated to repro.obs."""
    code = (
        "import sys, warnings\n"
        "warnings.simplefilter('error', DeprecationWarning)\n"
        "import repro, repro.cli, repro.serve, repro.engine, repro.obs\n"
        "assert 'repro.telemetry' not in sys.modules\n"
        "print('clean')\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "clean" in result.stdout
