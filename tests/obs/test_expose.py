"""Prometheus text exposition: rendering, parsing, label hygiene."""

from __future__ import annotations

import pytest

from repro.obs import (
    BUCKET_BOUNDS,
    Telemetry,
    parse_prometheus_text,
    prometheus_text,
)
from repro.obs.expose import sanitize_metric_name


def test_sanitize_maps_dotted_names_onto_prometheus_alphabet():
    assert (sanitize_metric_name("serve.request.seconds")
            == "repro_serve_request_seconds")
    assert sanitize_metric_name("a-b c", prefix="x") == "x_a_b_c"
    with pytest.raises(ValueError):
        sanitize_metric_name("...", prefix="")


def test_counters_render_as_total_and_round_trip():
    telemetry = Telemetry()
    telemetry.increment("serve.requests", 7)
    text = prometheus_text(telemetry.snapshot())
    assert "# TYPE repro_serve_requests_total counter" in text
    samples = parse_prometheus_text(text)
    assert samples["repro_serve_requests_total"][frozenset()] == 7


def test_timers_render_as_seconds_total():
    telemetry = Telemetry()
    telemetry.observe_seconds("engine.solver", 1.25)
    samples = parse_prometheus_text(prometheus_text(telemetry.snapshot()))
    assert samples["repro_engine_solver_seconds_total"][frozenset()] == (
        pytest.approx(1.25)
    )


def test_histogram_renders_cumulative_le_buckets():
    telemetry = Telemetry()
    for value in (0.001, 0.001, 0.5):
        telemetry.observe("lat", value)
    text = prometheus_text(telemetry.snapshot())
    samples = parse_prometheus_text(text)
    buckets = samples["repro_lat_bucket"]
    # Cumulative in le: every finite bound count <= the +Inf count.
    inf_count = buckets[frozenset({("le", "+Inf")})]
    assert inf_count == 3
    finite = [
        (dict(labels)["le"], count)
        for labels, count in buckets.items()
        if dict(labels)["le"] != "+Inf"
    ]
    by_bound = sorted(finite, key=lambda item: float(item[0]))
    counts = [count for _, count in by_bound]
    assert counts == sorted(counts)  # monotone non-decreasing
    assert counts[-1] == 3
    assert len(by_bound) == len(BUCKET_BOUNDS)
    assert samples["repro_lat_count"][frozenset()] == 3
    assert samples["repro_lat_sum"][frozenset()] == pytest.approx(0.502)


def test_labels_render_escaped_and_parse_back():
    telemetry = Telemetry()
    telemetry.increment("x")
    tricky = 'chip "a"\\b\nend'
    text = prometheus_text(telemetry.snapshot(), labels={"chip": tricky})
    samples = parse_prometheus_text(text)
    (labels,) = samples["repro_x_total"]
    assert dict(labels)["chip"] == tricky


def test_gauges_render_and_none_skipped():
    text = prometheus_text(
        {"counters": {}, "timers": {}, "histograms": {}},
        gauges={"serve.qps": 12.5, "serve.p95": None},
    )
    samples = parse_prometheus_text(text)
    assert samples["repro_serve_qps"][frozenset()] == 12.5
    assert "repro_serve_p95" not in samples
    assert "# TYPE repro_serve_qps gauge" in text


def test_invalid_label_name_rejected_at_render_time():
    with pytest.raises(ValueError):
        prometheus_text(
            {"counters": {"x": 1}, "timers": {}, "histograms": {}},
            labels={"bad-label": "v"},
        )


@pytest.mark.parametrize("line", [
    "no spaces or value",
    'metric{unclosed="v" 1',
    'metric{k=unquoted} 1',
    "metric notanumber",
    "0leading_digit 1",
])
def test_parser_rejects_malformed_lines(line):
    with pytest.raises(ValueError):
        parse_prometheus_text(line + "\n")


def test_parser_ignores_comments_and_blanks():
    text = "# HELP x y\n\n# TYPE x counter\nx 1\n"
    assert parse_prometheus_text(text) == {"x": {frozenset(): 1.0}}


def test_full_telemetry_exposition_is_hygienic():
    """Every metric a busy Telemetry produces must pass the strict
    parser — the exact property the CI metrics-smoke job scrapes for."""
    telemetry = Telemetry()
    telemetry.increment("serve.requests", 3)
    telemetry.increment("serve.tier.hot")
    telemetry.observe_seconds("engine.solver", 0.2)
    for value in (0.001, 0.05, 2.0):
        telemetry.observe("serve.request.seconds", value)
    text = prometheus_text(
        telemetry.snapshot(),
        labels={"chip": "abc123"},
        gauges={"serve.queue.depth": 0, "serve.tier.hit.ratio": 0.75},
    )
    samples = parse_prometheus_text(text)
    for name in (
        "repro_serve_requests_total",
        "repro_serve_request_seconds_bucket",
        "repro_serve_request_seconds_count",
        "repro_serve_tier_hit_ratio",
    ):
        assert name in samples
    # The shared label set reaches every sample.
    for name, by_labels in samples.items():
        for labels in by_labels:
            assert dict(labels).get("chip") == "abc123", name
