"""Event log tests: incremental writes, schema validation, torn tails."""

from __future__ import annotations

import json

from repro.obs import (
    EVENT_TYPES,
    EventLog,
    Telemetry,
    iter_events,
    read_events,
    validate_event,
    validate_event_log,
)


class TestEventLog:
    def test_emit_appends_one_json_line_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("run.scheduled", run="a")
            log.emit("run.completed", run="a", dur_s=0.5, attempts=1)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "run.scheduled"
        assert first["run"] == "a"
        assert isinstance(first["ts"], float)

    def test_records_are_readable_before_close(self, tmp_path):
        # Incremental flushing: a concurrent reader (or a post-mortem
        # of a killed campaign) sees every event already emitted.
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("campaign.started", experiments=["fig7a"])
        assert read_events(path)[0]["event"] == "campaign.started"
        log.close()

    def test_tuple_fields_are_jsonified(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("run.cached", run=("fsweep", True, 2.6e6))
        (record,) = read_events(path)
        assert record["run"] == ["fsweep", True, 2.6e6]

    def test_rich_objects_fall_back_to_repr(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("run.failed", error=ValueError("boom"))
        (record,) = read_events(path)
        assert "boom" in record["error"]

    def test_append_mode_preserves_prior_trace(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("campaign.started")
        with EventLog(path) as log:
            log.emit("campaign.completed", status=0)
        assert [r["event"] for r in read_events(path)] == [
            "campaign.started", "campaign.completed",
        ]

    def test_telemetry_emit_routes_to_attached_log(self, tmp_path):
        telemetry = Telemetry()
        telemetry.emit("run.started", run="x")  # no sink: silent no-op
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            telemetry.enable_tracing(events=log)
            telemetry.emit("run.started", run="x")
            with telemetry.span("session.execute", runs=3):
                pass
        events = read_events(path)
        assert [r["event"] for r in events] == ["run.started", "span"]
        assert events[1]["name"] == "session.execute"
        assert events[1]["meta_runs"] == 3


class TestValidation:
    def test_valid_record(self):
        assert validate_event({"ts": 1.0, "event": "run.started"}) == []

    def test_unknown_type_rejected(self):
        errors = validate_event({"ts": 1.0, "event": "run.vanished"})
        assert any("unknown event type" in e for e in errors)

    def test_missing_ts_rejected(self):
        errors = validate_event({"event": "run.started"})
        assert any("'ts'" in e for e in errors)

    def test_boolean_ts_rejected(self):
        errors = validate_event({"ts": True, "event": "run.started"})
        assert any("'ts'" in e for e in errors)

    def test_span_needs_reconstruction_fields(self):
        errors = validate_event({"ts": 1.0, "event": "span"})
        assert {"name", "span_id", "start_s", "dur_s"} == {
            e.split()[-1].strip("'") for e in errors
        }

    def test_every_declared_type_is_accepted(self):
        for event in EVENT_TYPES:
            record = {"ts": 0.0, "event": event}
            if event == "span":
                record.update(name="s", span_id=1, start_s=0.0, dur_s=0.0)
            assert validate_event(record) == []


class TestLogValidation:
    def test_clean_log_validates(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("campaign.started")
            log.emit("campaign.completed", status=0)
        n_valid, errors = validate_event_log(path)
        assert (n_valid, errors) == (2, [])

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("campaign.started")
        with path.open("a") as handle:
            handle.write('{"ts": 1.0, "event": "run.com')  # killed mid-write
        assert [r["event"] for r in read_events(path)] == ["campaign.started"]
        assert any(
            "_malformed" in record for record in iter_events(path)
        )
        n_valid, errors = validate_event_log(path)
        assert (n_valid, errors) == (1, [])

    def test_mid_file_corruption_is_an_error(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"ts": 1.0, "event": "campaign.started"}\n'
            "garbage\n"
            '{"ts": 2.0, "event": "campaign.completed"}\n'
        )
        n_valid, errors = validate_event_log(path)
        assert n_valid == 2
        assert any("line 2" in e for e in errors)

    def test_schema_violations_carry_line_numbers(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"ts": 1.0, "event": "nope"}\n')
        n_valid, errors = validate_event_log(path)
        assert n_valid == 0
        assert errors and errors[0].startswith("line 1:")
