"""Metric primitive tests: histograms, spans, snapshots, merging."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.obs import Histogram, Telemetry, capture_telemetry, get_telemetry
from repro.obs.metrics import HISTOGRAM_MAX_SAMPLES


class TestHistogram:
    def test_empty_histogram_reads_as_nothing(self):
        histogram = Histogram()
        assert histogram.count == 0
        assert histogram.mean is None
        assert histogram.percentile(50) is None
        assert histogram.percentile(99) is None
        assert histogram.summary() == {"count": 0}

    def test_single_sample_is_every_percentile(self):
        histogram = Histogram()
        histogram.observe(7.5)
        assert histogram.percentile(0) == 7.5
        assert histogram.percentile(50) == 7.5
        assert histogram.percentile(100) == 7.5
        assert histogram.min == histogram.max == histogram.mean == 7.5

    def test_many_samples_nearest_rank(self):
        histogram = Histogram()
        for value in range(1, 101):  # 1..100
            histogram.observe(value)
        assert histogram.percentile(50) == 50
        assert histogram.percentile(95) == 95
        assert histogram.percentile(99) == 99
        assert histogram.percentile(100) == 100
        assert histogram.percentile(0) == 1  # nearest-rank floor

    def test_order_does_not_matter(self):
        forward, backward = Histogram(), Histogram()
        for value in range(50):
            forward.observe(value)
            backward.observe(49 - value)
        for p in (25, 50, 75, 95):
            assert forward.percentile(p) == backward.percentile(p)

    def test_percentile_bounds_rejected(self):
        histogram = Histogram()
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.percentile(-1)
        with pytest.raises(ValueError):
            histogram.percentile(101)

    def test_reservoir_is_bounded_but_count_exact(self):
        histogram = Histogram(max_samples=64)
        for value in range(1000):
            histogram.observe(value)
        assert histogram.count == 1000
        assert len(histogram.samples) < 64
        assert histogram.min == 0 and histogram.max == 999
        # Decimation keeps percentiles representative.
        assert 400 <= histogram.percentile(50) <= 600

    def test_decimation_is_deterministic(self):
        a, b = Histogram(max_samples=32), Histogram(max_samples=32)
        for value in range(500):
            a.observe(value)
            b.observe(value)
        assert a.samples == b.samples
        assert a.percentile(95) == b.percentile(95)

    def test_merge_dump_combines_exact_stats(self):
        a, b = Histogram(), Histogram()
        for value in (1.0, 2.0, 3.0):
            a.observe(value)
        for value in (10.0, 20.0):
            b.observe(value)
        a.merge_dump(b.dump())
        assert a.count == 5
        assert a.total == 36.0
        assert a.min == 1.0 and a.max == 20.0
        assert a.percentile(100) == 20.0

    def test_merge_empty_dump_is_noop(self):
        histogram = Histogram()
        histogram.observe(4.0)
        histogram.merge_dump(Histogram().dump())
        assert histogram.count == 1

    def test_default_bound(self):
        assert Histogram().max_samples == HISTOGRAM_MAX_SAMPLES


class TestSnapshot:
    def test_snapshot_round_trips_through_json(self):
        telemetry = Telemetry()
        telemetry.increment("engine.runs", 3)
        telemetry.observe_seconds("engine.run_seconds", 1.25)
        telemetry.observe("engine.run.seconds", 0.5)
        telemetry.observe("engine.run.seconds", 1.5)
        telemetry.enable_tracing()
        with telemetry.span("campaign", experiments=1):
            with telemetry.span("experiment.fig7a"):
                pass
        snapshot = telemetry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["counters"]["engine.runs"] == 3
        assert snapshot["histograms"]["engine.run.seconds"]["count"] == 2
        assert snapshot["spans"]["campaign"]["count"] == 1
        tree = snapshot["span_tree"]
        assert tree[0]["name"] == "campaign"
        assert tree[0]["children"][0]["name"] == "experiment.fig7a"

    def test_snapshot_survives_unjsonable_span_meta(self):
        telemetry = Telemetry()
        telemetry.enable_tracing()
        with telemetry.span("lookup", key=object(), tag=("a", 1)):
            pass
        snapshot = telemetry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_reset_clears_everything(self):
        telemetry = Telemetry()
        telemetry.increment("n")
        telemetry.observe("h", 1.0)
        telemetry.enable_tracing()
        with telemetry.span("s"):
            pass
        telemetry.reset()
        assert not telemetry.counters
        assert not telemetry.histograms
        assert not telemetry.span_roots
        assert not telemetry.span_stats


class TestSpans:
    def test_disabled_spans_share_one_noop(self):
        telemetry = Telemetry()
        assert telemetry.span("a") is telemetry.span("b")
        with telemetry.span("a"):
            pass
        assert telemetry.span_roots == []

    def test_nesting_builds_a_tree(self):
        telemetry = Telemetry()
        telemetry.enable_tracing()
        with telemetry.span("outer"):
            with telemetry.span("inner-1"):
                pass
            with telemetry.span("inner-2"):
                pass
        (root,) = telemetry.span_roots
        assert root.name == "outer"
        assert [child.name for child in root.children] == [
            "inner-1", "inner-2",
        ]
        assert root.duration_s >= max(
            child.duration_s for child in root.children
        )

    def test_exception_unwinds_and_marks_error(self):
        telemetry = Telemetry()
        telemetry.enable_tracing()
        with pytest.raises(RuntimeError):
            with telemetry.span("outer"):
                with telemetry.span("inner"):
                    raise RuntimeError("boom")
        (root,) = telemetry.span_roots
        assert root.error and root.children[0].error
        # The stack fully unwound: new spans are roots again.
        with telemetry.span("after"):
            pass
        assert [span.name for span in telemetry.span_roots] == [
            "outer", "after",
        ]
        assert telemetry._span_stack == []

    def test_span_stats_accumulate(self):
        telemetry = Telemetry()
        telemetry.enable_tracing()
        for _ in range(3):
            with telemetry.span("phase"):
                pass
        assert telemetry.span_summary()["phase"]["count"] == 3


class TestMerge:
    def test_merge_adds_counters_timers_histograms(self):
        parent, worker = Telemetry(), Telemetry()
        parent.increment("engine.runs", 2)
        worker.increment("engine.runs", 3)
        worker.increment("engine.solver.invocations", 3)
        worker.observe_seconds("engine.solver.seconds", 0.5)
        worker.observe("engine.run.seconds", 0.1)
        parent.merge(worker.merge_payload())
        assert parent.counter("engine.runs") == 5
        assert parent.counter("engine.solver.invocations") == 3
        assert parent.timer("engine.solver.seconds") == 0.5
        assert parent.histogram("engine.run.seconds").count == 1

    def test_merge_payload_is_picklable(self):
        worker = Telemetry()
        worker.increment("n")
        worker.observe("h", 2.0)
        payload = pickle.loads(pickle.dumps(worker.merge_payload()))
        parent = Telemetry()
        parent.merge(payload)
        assert parent.counter("n") == 1

    def test_merge_none_is_noop(self):
        parent = Telemetry()
        parent.merge(None)
        parent.merge({})
        assert not parent.counters


class TestCaptureTelemetry:
    def test_ambient_recording_diverts_then_restores(self):
        ambient = get_telemetry()
        before = ambient.counter("captured")
        with capture_telemetry() as local:
            get_telemetry().increment("captured")
            assert local.counter("captured") == 1
        assert ambient.counter("captured") == before
        assert get_telemetry() is ambient

    def test_restores_on_exception(self):
        ambient = get_telemetry()
        with pytest.raises(ValueError):
            with capture_telemetry():
                raise ValueError("boom")
        assert get_telemetry() is ambient


class TestReport:
    def test_report_renders_histograms_and_spans(self):
        telemetry = Telemetry()
        telemetry.increment("engine.runs", 2)
        for value in (0.1, 0.2, 0.3):
            telemetry.observe("engine.run.seconds", value)
        telemetry.enable_tracing()
        with telemetry.span("campaign"):
            pass
        report = telemetry.report()
        assert "p95=" in report
        assert "span campaign" in report
