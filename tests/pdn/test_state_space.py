"""State-space/modal solver tests against closed-form circuit theory."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.pdn.netlist import Netlist
from repro.pdn.state_space import ModalSystem, build_state_space


def rc_net(r=1.0, c=1e-6, esr=1e-3):
    net = Netlist("rc")
    net.add_voltage_port("vin", "src")
    net.add_resistor("r1", "src", "out", r)
    net.add_capacitor("c1", "out", c, esr=esr)
    net.add_current_port("load", "out")
    return net


def rlc_net(r=0.05, l=1e-9, c=1e-6, esr=1e-4):
    net = Netlist("rlc")
    net.add_voltage_port("vin", "src")
    net.add_inductor("l1", "src", "out", l, esr=r)
    net.add_capacitor("c1", "out", c, esr=esr)
    net.add_current_port("load", "out")
    return net


class TestBuild:
    def test_order_counts_caps_and_inductors(self):
        ss = build_state_space(rlc_net())
        assert ss.order == 2  # one cap state + one inductor current
        assert ss.state_names == ["cap:out", "ind:l1"]

    def test_node_and_input_indexing(self):
        ss = build_state_space(rc_net())
        assert set(ss.node_index) == {"src", "out"}
        assert set(ss.input_index) == {"load", "vin"}

    def test_unknown_node_raises(self):
        ss = build_state_space(rc_net())
        with pytest.raises(SolverError):
            ss.output_rows(["nope"])

    def test_unknown_input_raises(self):
        ss = build_state_space(rc_net())
        with pytest.raises(SolverError):
            ss.input_column("nope")


class TestDcSolutions:
    def test_resistive_divider(self):
        # src --1ohm-- mid --1ohm-- gnd: mid sits at vin/2 at DC.
        net = Netlist("divider")
        net.add_voltage_port("vin", "src")
        net.add_resistor("ra", "src", "mid", 1.0)
        net.add_resistor("rb", "mid", "gnd", 1.0)
        net.add_capacitor("c", "mid", 1e-6, esr=1e-3)
        ss = build_state_space(net)
        u = np.zeros(1)
        u[ss.input_column("vin")] = 2.0
        v = ss.dc_voltages(u)
        assert v[ss.node_index["mid"]] == pytest.approx(1.0, rel=1e-9)

    def test_load_droop_is_ir(self):
        ss = build_state_space(rc_net(r=0.5))
        u = np.zeros(2)
        u[ss.input_column("vin")] = 1.0
        u[ss.input_column("load")] = 2.0  # 2 A draw
        v = ss.dc_voltages(u)
        # droop = I * R = 1.0 V below the source.
        assert v[ss.node_index["out"]] == pytest.approx(1.0 - 2.0 * 0.5, rel=1e-9)


class TestModalStepResponse:
    def test_rc_charging_curve(self):
        r, c = 2.0, 3e-6
        modal = ModalSystem(build_state_space(rc_net(r=r, c=c, esr=1e-6)))
        tau = r * c  # esr negligible
        t = np.linspace(0, 5 * tau, 200)
        response = modal.step_response("vin", ["out"], t)[0]
        expected = 1.0 - np.exp(-t / tau)
        assert np.allclose(response, expected, atol=2e-3)

    def test_load_step_final_value(self):
        modal = ModalSystem(build_state_space(rc_net(r=0.25)))
        t = np.array([50e-6])  # many time constants
        response = modal.step_response("load", ["out"], t)[0]
        # 1 A load step -> -0.25 V at steady state (vin held at 0 for
        # superposition purposes).
        assert response[0] == pytest.approx(-0.25, rel=1e-6)

    def test_causality(self):
        modal = ModalSystem(build_state_space(rc_net()))
        t = np.array([-1e-6, -1e-9, 0.0, 1e-6])
        response = modal.step_response("load", ["out"], t)[0]
        assert response[0] == 0.0
        assert response[1] == 0.0

    def test_rlc_resonance_frequency(self):
        l, c = 1e-9, 1e-6
        modal = ModalSystem(build_state_space(rlc_net(l=l, c=c, r=0.005)))
        f0 = 1.0 / (2 * np.pi * np.sqrt(l * c))
        eigen_freqs = np.abs(np.imag(modal.eigenvalues)) / (2 * np.pi)
        assert eigen_freqs.max() == pytest.approx(f0, rel=0.02)

    def test_rlc_underdamped_overshoot(self):
        modal = ModalSystem(build_state_space(rlc_net(r=0.005)))
        t = np.linspace(0, 50e-6, 4000)
        response = modal.step_response("load", ["out"], t)[0]
        final = response[-1]
        # Underdamped: the droop overshoots its steady-state value.
        assert response.min() < 1.6 * final

    def test_passivity_check(self):
        modal = ModalSystem(build_state_space(rlc_net()))
        assert np.real(modal.eigenvalues).max() <= 1e-6


class TestFrequencyResponse:
    def test_dc_limit_matches_resistance(self):
        modal = ModalSystem(build_state_space(rc_net(r=0.5)))
        h = modal.frequency_response("load", ["out"], np.array([1e-2]))[0, 0]
        assert abs(h) == pytest.approx(0.5, rel=1e-3)

    def test_capacitor_shorts_high_frequency(self):
        # Far above the RC corner the node impedance collapses to the
        # capacitor branch: |esr + 1/(jwC)|.
        modal = ModalSystem(build_state_space(rc_net(r=0.5, c=1e-6, esr=1e-4)))
        f = 1e9
        h = modal.frequency_response("load", ["out"], np.array([f]))[0, 0]
        expected = abs(1e-4 + 1.0 / (2j * np.pi * f * 1e-6))
        assert abs(h) == pytest.approx(expected, rel=0.02)

    def test_rlc_peak_at_resonance(self):
        l, c = 1e-9, 1e-6
        modal = ModalSystem(build_state_space(rlc_net(l=l, c=c, r=0.005)))
        f0 = 1.0 / (2 * np.pi * np.sqrt(l * c))
        freqs = np.array([f0 / 10, f0, f0 * 10])
        h = np.abs(modal.frequency_response("load", ["out"], freqs)[0])
        assert h[1] > h[0]
        assert h[1] > h[2]

    def test_slowest_time_constant_matches_rc(self):
        r, c = 2.0, 3e-6
        modal = ModalSystem(build_state_space(rc_net(r=r, c=c, esr=1e-6)))
        assert modal.slowest_time_constant() == pytest.approx(r * c, rel=0.01)
