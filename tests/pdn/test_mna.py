"""Trapezoidal MNA transient engine tests, including cross-validation
against the exact modal solution (the two engines are independent)."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.pdn.mna import simulate_transient
from repro.pdn.netlist import Netlist
from repro.pdn.state_space import ModalSystem, build_state_space


def rc_net(r=1.0, c=1e-6, esr=1e-3):
    net = Netlist("rc")
    net.add_voltage_port("vin", "src")
    net.add_resistor("r1", "src", "out", r)
    net.add_capacitor("c1", "out", c, esr=esr)
    net.add_current_port("load", "out")
    return net


def two_stage_net():
    """Source -> RL -> stage1(C) -> RL -> stage2(C), with a load."""
    net = Netlist("two-stage")
    net.add_voltage_port("vin", "src")
    net.add_inductor("l1", "src", "s1", 2e-9, esr=0.02)
    net.add_capacitor("c1", "s1", 5e-6, esr=5e-4)
    net.add_inductor("l2", "s1", "s2", 0.5e-9, esr=0.01)
    net.add_capacitor("c2", "s2", 2e-6, esr=8e-4)
    net.add_current_port("load", "s2")
    return net


class TestBasics:
    def test_rc_step_charging(self):
        r, c = 1.0, 1e-6
        result = simulate_transient(
            rc_net(r=r, c=c, esr=1e-6), {"vin": 1.0}, t_end=5e-6, dt=5e-9,
            observe=["out"],
        )
        tau = r * c
        expected = 1.0 - np.exp(-result.times / tau)
        assert np.allclose(result.voltages["out"], expected, atol=5e-3)

    def test_constant_load_droop(self):
        result = simulate_transient(
            rc_net(r=0.5), {"vin": 1.0, "load": 2.0}, t_end=20e-6, dt=20e-9,
            observe=["out"],
        )
        assert result.voltages["out"][-1] == pytest.approx(0.0, abs=2e-3)

    def test_time_varying_load(self):
        def load(times):
            return np.where(times > 5e-6, 1.0, 0.0)

        result = simulate_transient(
            rc_net(r=0.5), {"vin": 1.0, "load": load}, t_end=30e-6, dt=10e-9,
            observe=["out"],
        )
        # Before the step: charged to vin.  After: droops by I*R.
        mid = result.voltages["out"][result.times < 4.9e-6][-1]
        end = result.voltages["out"][-1]
        assert mid == pytest.approx(1.0, abs=5e-3)
        assert end == pytest.approx(0.5, abs=5e-3)

    def test_peak_to_peak_helper(self):
        result = simulate_transient(
            rc_net(), {"vin": 1.0}, t_end=5e-6, dt=5e-9, observe=["out"]
        )
        assert result.peak_to_peak("out") == pytest.approx(
            result.voltages["out"].max() - result.voltages["out"].min()
        )
        with pytest.raises(SolverError):
            result.peak_to_peak("out", after=1.0)


class TestValidationErrors:
    def test_missing_voltage_port_value(self):
        with pytest.raises(SolverError, match="needs a supplied value"):
            simulate_transient(rc_net(), {}, t_end=1e-6, dt=1e-9)

    def test_unknown_input_rejected(self):
        with pytest.raises(SolverError, match="unknown input"):
            simulate_transient(
                rc_net(), {"vin": 1.0, "bogus": 1.0}, t_end=1e-6, dt=1e-9
            )

    def test_bad_timebase_rejected(self):
        with pytest.raises(SolverError, match="time base"):
            simulate_transient(rc_net(), {"vin": 1.0}, t_end=1e-9, dt=1e-6)

    def test_unknown_observe_node(self):
        with pytest.raises(SolverError, match="unknown node"):
            simulate_transient(
                rc_net(), {"vin": 1.0}, t_end=1e-6, dt=1e-9, observe=["zz"]
            )


class TestCrossValidation:
    """The MNA engine must agree with the exact modal solution."""

    def test_two_stage_load_step(self):
        net = two_stage_net()
        modal = ModalSystem(build_state_space(net))
        result = simulate_transient(
            net, {"vin": 0.0, "load": 1.0}, t_end=4e-6, dt=0.5e-9,
            observe=["s1", "s2"],
        )
        exact = modal.step_response("load", ["s1", "s2"], result.times)
        for row, node in enumerate(["s1", "s2"]):
            scale = max(np.abs(exact[row]).max(), 1e-12)
            # Skip t=0: the modal solution reports the 0+ feedthrough,
            # the discrete engine records the 0- state.
            err = np.abs(result.voltages[node][1:] - exact[row][1:]).max() / scale
            assert err < 0.02, f"{node}: {err}"

    def test_two_stage_source_step(self):
        net = two_stage_net()
        modal = ModalSystem(build_state_space(net))
        result = simulate_transient(
            net, {"vin": 1.0}, t_end=4e-6, dt=0.5e-9, observe=["s2"]
        )
        exact = modal.step_response("vin", ["s2"], result.times)[0]
        err = np.abs(result.voltages["s2"][1:] - exact[1:]).max()
        assert err < 0.02

    def test_chip_netlist_step(self, chip_netlist):
        """The full reference chip: trapezoidal vs modal on a core step."""
        modal = ModalSystem(build_state_space(chip_netlist))
        result = simulate_transient(
            chip_netlist,
            {"vrm": 0.0, "load_core0": 1.0},
            t_end=1.5e-6,
            dt=0.5e-9,
            observe=["core0", "core3"],
        )
        exact = modal.step_response("load_core0", ["core0", "core3"], result.times)
        for row, node in enumerate(["core0", "core3"]):
            scale = np.abs(exact[row]).max()
            err = np.abs(result.voltages[node][1:] - exact[row][1:]).max() / scale
            assert err < 0.05, f"{node}: {err}"
