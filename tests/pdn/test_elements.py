"""Tests for PDN circuit elements."""

import pytest

from repro.errors import NetlistError
from repro.pdn.elements import (
    Capacitor,
    CurrentPort,
    Inductor,
    Resistor,
    VoltagePort,
)


class TestResistor:
    def test_valid(self):
        r = Resistor("r1", "a", "b", 0.5e-3)
        assert r.ohms == 0.5e-3

    def test_rejects_self_loop(self):
        with pytest.raises(NetlistError):
            Resistor("r1", "a", "a", 1.0)

    def test_rejects_nonpositive_value(self):
        with pytest.raises(NetlistError):
            Resistor("r1", "a", "b", 0.0)
        with pytest.raises(NetlistError):
            Resistor("r1", "a", "b", -1.0)

    def test_rejects_empty_name(self):
        with pytest.raises(NetlistError):
            Resistor("", "a", "b", 1.0)


class TestInductor:
    def test_valid_with_esr(self):
        ind = Inductor("l1", "a", "b", 1e-9, esr=1e-3)
        assert ind.henries == 1e-9
        assert ind.esr == 1e-3

    def test_esr_defaults_to_zero(self):
        assert Inductor("l1", "a", "b", 1e-9).esr == 0.0

    def test_rejects_negative_esr(self):
        with pytest.raises(NetlistError):
            Inductor("l1", "a", "b", 1e-9, esr=-1e-3)

    def test_rejects_nonpositive_inductance(self):
        with pytest.raises(NetlistError):
            Inductor("l1", "a", "b", 0.0)


class TestCapacitor:
    def test_valid(self):
        cap = Capacitor("c1", "n", 1e-6, esr=1e-3)
        assert cap.farads == 1e-6

    def test_requires_strictly_positive_esr(self):
        # Zero-ESR capacitors would break the algebraic node solve.
        with pytest.raises(NetlistError):
            Capacitor("c1", "n", 1e-6, esr=0.0)

    def test_rejects_ground_placement(self):
        with pytest.raises(NetlistError):
            Capacitor("c1", "gnd", 1e-6, esr=1e-3)


class TestPorts:
    def test_current_port(self):
        assert CurrentPort("load", "n").node == "n"

    def test_current_port_rejects_ground(self):
        with pytest.raises(NetlistError):
            CurrentPort("load", "gnd")

    def test_voltage_port_rejects_ground(self):
        with pytest.raises(NetlistError):
            VoltagePort("vrm", "gnd")
