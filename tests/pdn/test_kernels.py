"""The compiled batched chip kernel: compilation, memoization,
equivalence against the reference superposition, and the contribution
cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SolverError
from repro.pdn.kernels import (
    _CONTRIB_CACHE_ENTRIES,
    KERNEL_TOLERANCE_V,
    SampleGrid,
    clear_kernel_cache,
    compile_kernel,
    library_fingerprint,
)
from repro.pdn.superposition import EdgeTrain, assemble_voltage


@pytest.fixture(scope="module")
def library(chip):
    return chip.response_library


@pytest.fixture(scope="module")
def kernel(library):
    return compile_kernel(library)


def square_train(port: str, delta: float = 18.0, freq: float = 2.6e6,
                 n: int = 40) -> EdgeTrain:
    half = 0.5 / freq
    times = np.arange(2 * n) * half
    deltas = np.where(np.arange(2 * n) % 2 == 0, delta, -delta)
    return EdgeTrain(port, times, deltas)


class TestCompilation:
    def test_memoized_per_fingerprint(self, library):
        assert compile_kernel(library) is compile_kernel(library)

    def test_clear_cache_recompiles(self, library):
        first = compile_kernel(library)
        clear_kernel_cache()
        second = compile_kernel(library)
        assert second is not first
        assert second.fingerprint == first.fingerprint

    def test_fingerprint_deterministic(self, library, kernel):
        assert library_fingerprint(library) == library_fingerprint(library)
        assert compile_kernel(library).fingerprint == library_fingerprint(
            library
        )

    def test_chip_compiled_kernel_property(self, chip):
        assert chip.compiled_kernel is chip.compiled_kernel
        assert chip.compiled_kernel.fingerprint == library_fingerprint(
            chip.response_library
        )


class TestEquivalence:
    def test_matches_reference_superposition(self, chip, library, kernel):
        ports = chip.core_ports[:3]
        trains = [
            square_train(port, delta=10.0 + 4.0 * i)
            for i, port in enumerate(ports)
        ]
        times = np.linspace(0.0, 30e-6, 2048)
        nodes = chip.core_nodes
        fast = kernel.evaluate(trains, times, nodes=nodes)
        for row, node in enumerate(nodes):
            reference = assemble_voltage(library, node, trains, times)
            assert np.abs(fast[row] - reference).max() < KERNEL_TOLERANCE_V

    def test_tier_boundaries(self, chip, library, kernel):
        """Samples straddling the window/slow/dc tier edges agree with
        the reference path too."""
        port = chip.core_ports[0]
        train = EdgeTrain(port, np.array([0.0]), np.array([25.0]))
        window = float(kernel.window)
        times = np.concatenate([
            np.linspace(0.0, window * 0.999, 256),
            np.linspace(window * 1.001, window * 40.0, 256),
        ])
        node = chip.core_nodes[0]
        fast = kernel.evaluate([train], times, nodes=[node])[0]
        reference = assemble_voltage(library, node, [train], times)
        assert np.abs(fast - reference).max() < KERNEL_TOLERANCE_V

    def test_sample_grid_matches_raw_times(self, chip, kernel):
        train = square_train(chip.core_ports[1])
        times = np.linspace(0.0, 20e-6, 1024)
        raw = kernel.evaluate([train], times)
        gridded = kernel.evaluate([train], SampleGrid(times))
        assert np.array_equal(raw, gridded)

    def test_same_port_trains_merge(self, chip, kernel):
        """Two trains on one port solve identically to their sorted
        concatenation as a single train."""
        port = chip.core_ports[2]
        a = square_train(port, delta=9.0)
        b = EdgeTrain(port, a.times + 0.2e-6, -0.5 * a.deltas)
        merged_times = np.concatenate([a.times, b.times])
        merged_deltas = np.concatenate([a.deltas, b.deltas])
        order = np.argsort(merged_times, kind="stable")
        merged = EdgeTrain(port, merged_times[order], merged_deltas[order])
        times = np.linspace(0.0, 25e-6, 768)
        assert np.array_equal(
            kernel.evaluate([a, b], times),
            kernel.evaluate([merged], times),
        )


class TestErrors:
    def test_unknown_port_raises(self, kernel):
        bogus = EdgeTrain("load_nowhere", np.array([0.0]), np.array([1.0]))
        with pytest.raises(SolverError, match="load_nowhere"):
            kernel.evaluate([bogus], np.linspace(0.0, 1e-6, 16))

    def test_unknown_node_raises(self, chip, kernel):
        train = square_train(chip.core_ports[0])
        with pytest.raises(SolverError):
            kernel.evaluate(
                [train], np.linspace(0.0, 1e-6, 16), nodes=["nowhere"]
            )


class TestContributionCache:
    def test_identical_stimuli_reuse_contributions(self, chip, library):
        kernel = compile_kernel(library, fingerprint="contrib-test-reuse")
        train = square_train(chip.core_ports[0])
        times = np.linspace(0.0, 10e-6, 512)
        first = kernel.evaluate([train], times)
        entries = len(kernel._contrib_cache)
        assert entries >= 1
        second = kernel.evaluate([train], times)
        assert len(kernel._contrib_cache) == entries  # pure replay
        assert np.array_equal(first, second)

    def test_cache_stays_bounded(self, chip, library):
        kernel = compile_kernel(library, fingerprint="contrib-test-bound")
        times = np.linspace(0.0, 5e-6, 64)
        port = chip.core_ports[0]
        for i in range(_CONTRIB_CACHE_ENTRIES + 8):
            train = EdgeTrain(
                port, np.array([0.0]), np.array([1.0 + 0.01 * i])
            )
            kernel.evaluate([train], times)
        assert len(kernel._contrib_cache) <= _CONTRIB_CACHE_ENTRIES
