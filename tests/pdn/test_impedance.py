"""Impedance profile and resonance detection tests."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.pdn.impedance import ImpedanceProfile, find_resonances, impedance_profile
from repro.pdn.netlist import Netlist


def tank_net(l=1e-9, c=1e-6, r=0.01):
    net = Netlist("tank")
    net.add_voltage_port("vin", "src")
    net.add_inductor("l1", "src", "out", l, esr=r)
    net.add_capacitor("c1", "out", c, esr=1e-4)
    net.add_current_port("load", "out")
    return net


class TestImpedanceProfile:
    def test_peak_at_tank_resonance(self):
        l, c = 1e-9, 1e-6
        profile = impedance_profile(tank_net(l, c), "load", "out", 1e3, 1e9)
        f0 = 1.0 / (2 * np.pi * np.sqrt(l * c))
        peak_f, peak_z = profile.peak()
        assert peak_f == pytest.approx(f0, rel=0.08)
        assert peak_z > profile.at(f0 / 100)

    def test_interpolated_at(self):
        profile = impedance_profile(tank_net(), "load", "out", 1e3, 1e9)
        mid = profile.at(123456.0)
        assert profile.ohms.min() <= mid <= profile.ohms.max()

    def test_at_rejects_nonpositive(self):
        profile = impedance_profile(tank_net(), "load", "out", 1e3, 1e9)
        with pytest.raises(SolverError):
            profile.at(0.0)

    def test_bad_range_rejected(self):
        with pytest.raises(SolverError):
            impedance_profile(tank_net(), "load", "out", 1e6, 1e3)

    def test_points_per_decade(self):
        profile = impedance_profile(
            tank_net(), "load", "out", 1e3, 1e6, points_per_decade=10
        )
        assert profile.freqs_hz.size == 31


class TestFindResonances:
    def test_single_tank_single_peak(self):
        profile = impedance_profile(tank_net(), "load", "out", 1e3, 1e9)
        peaks = find_resonances(profile)
        assert len(peaks) == 1
        f0 = 1.0 / (2 * np.pi * np.sqrt(1e-9 * 1e-6))
        assert peaks[0][0] == pytest.approx(f0, rel=0.08)

    def test_flat_profile_has_no_peaks(self):
        freqs = np.logspace(3, 9, 100)
        flat = ImpedanceProfile(freqs, np.full(100, 1e-3), "load", "out")
        assert find_resonances(flat) == []

    def test_sorted_by_magnitude(self, chip_netlist):
        profile = impedance_profile(chip_netlist, "load_core0", "core0", 1e3, 1e9)
        peaks = find_resonances(profile)
        magnitudes = [z for _, z in peaks]
        assert magnitudes == sorted(magnitudes, reverse=True)
