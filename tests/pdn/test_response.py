"""Response library tests: sampling, smoothing, lookup semantics."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.pdn.netlist import Netlist
from repro.pdn.response import ResponseLibrary
from repro.pdn.state_space import ModalSystem, build_state_space


def small_net():
    net = Netlist("small")
    net.add_voltage_port("vin", "src")
    net.add_inductor("l1", "src", "a", 1e-9, esr=0.02)
    net.add_capacitor("ca", "a", 2e-6, esr=5e-4)
    net.add_resistor("rab", "a", "b", 0.01)
    net.add_capacitor("cb", "b", 1e-6, esr=5e-4)
    net.add_current_port("load_a", "a")
    net.add_current_port("load_b", "b")
    return net


@pytest.fixture(scope="module")
def library():
    return ResponseLibrary(
        small_net(), ports=["load_a", "load_b"], nodes=["a", "b"],
        rise_time=2e-9,
    )


class TestConstruction:
    def test_requires_ports_and_nodes(self):
        with pytest.raises(SolverError):
            ResponseLibrary(small_net(), ports=[], nodes=["a"])

    def test_rejects_bad_rise_time(self):
        with pytest.raises(SolverError):
            ResponseLibrary(small_net(), ports=["load_a"], nodes=["a"], rise_time=0)

    def test_grid_is_sorted_unique(self, library):
        assert np.all(np.diff(library.grid) > 0)

    def test_horizon_covers_slow_modes(self, library):
        modal = ModalSystem(build_state_space(small_net()))
        assert library.horizon >= 5 * modal.slowest_time_constant()


class TestLookups:
    def test_step_matches_modal(self, library):
        modal = ModalSystem(build_state_space(small_net()))
        t = np.linspace(0, 2e-6, 500)
        exact = modal.step_response("load_a", ["b"], t)[0]
        sampled = library.step("load_a", "b", t)
        assert np.allclose(sampled, exact, atol=2e-5)

    def test_causal_before_zero(self, library):
        values = library.ramp("load_a", "a", np.array([-5e-9, -1e-12]))
        assert np.all(values == 0.0)

    def test_flat_at_dc_beyond_horizon(self, library):
        dc = library.dc("load_a", "a")
        far = library.ramp("load_a", "a", np.array([library.horizon * 3]))
        assert far[0] == pytest.approx(dc, rel=1e-9)

    def test_dc_negative_for_load(self, library):
        # Positive load draw produces a steady droop.
        assert library.dc("load_a", "a") < 0

    def test_ramp_is_smoothed_step(self, library):
        """The ramp response must match the step response convolved with
        the rectangular rise window (checked at the window's end)."""
        t = np.array([50e-9, 200e-9])
        step = library.step("load_a", "a", t)
        ramp = library.ramp("load_a", "a", t)
        # After many rise times they converge.
        assert ramp[1] == pytest.approx(step[1], rel=0.02)
        # The ramp response at t=0 is 0 (no instant jump).
        assert library.ramp("load_a", "a", np.array([0.0]))[0] == pytest.approx(
            0.0, abs=1e-9
        )

    def test_unknown_pair_raises(self, library):
        with pytest.raises(SolverError):
            library.step("load_a", "nope", np.array([0.0]))
        with pytest.raises(SolverError):
            library.dc("nope", "a")
