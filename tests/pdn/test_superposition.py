"""Superposition engine tests: edge trains and waveform assembly."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.pdn.netlist import Netlist
from repro.pdn.response import ResponseLibrary
from repro.pdn.superposition import (
    EdgeTrain,
    assemble_voltage,
    edges_from_square_wave,
)


def net():
    n = Netlist("sup")
    n.add_voltage_port("vin", "src")
    n.add_inductor("l1", "src", "a", 0.5e-9, esr=0.02)
    n.add_capacitor("ca", "a", 2e-6, esr=5e-4)
    n.add_current_port("load", "a")
    return n


@pytest.fixture(scope="module")
def library():
    return ResponseLibrary(net(), ports=["load"], nodes=["a"], rise_time=2e-9)


class TestEdgesFromSquareWave:
    def test_edge_count_and_signs(self):
        train = edges_from_square_wave("load", 10.0, 1e6, n_events=5)
        assert train.n_edges == 10
        assert np.all(train.deltas[0::2] == 10.0)
        assert np.all(train.deltas[1::2] == -10.0)

    def test_edge_timing(self):
        train = edges_from_square_wave("load", 1.0, 2e6, n_events=2, start=1e-6)
        period = 0.5e-6
        expected = [1e-6, 1e-6 + 0.5 * period, 1e-6 + period, 1e-6 + 1.5 * period]
        assert np.allclose(train.times, expected)

    def test_duty_controls_fall_position(self):
        train = edges_from_square_wave("load", 1.0, 1e6, n_events=1, duty=0.25)
        assert train.times[1] - train.times[0] == pytest.approx(0.25e-6)

    def test_derating_at_infeasible_frequency(self):
        # Half-period 5 ns < 20 ns rise: the current swing collapses.
        train = edges_from_square_wave(
            "load", 10.0, 1e8, n_events=1, rise_time=20e-9
        )
        assert abs(train.deltas[0]) == pytest.approx(10.0 * 5e-9 / 20e-9)

    def test_no_derating_when_feasible(self):
        train = edges_from_square_wave(
            "load", 10.0, 1e6, n_events=1, rise_time=20e-9
        )
        assert abs(train.deltas[0]) == 10.0

    def test_validation(self):
        with pytest.raises(SolverError):
            edges_from_square_wave("load", 1.0, -1.0, 1)
        with pytest.raises(SolverError):
            edges_from_square_wave("load", 1.0, 1e6, 0)
        with pytest.raises(SolverError):
            edges_from_square_wave("load", 1.0, 1e6, 1, duty=1.5)

    def test_shifted(self):
        train = edges_from_square_wave("load", 1.0, 1e6, 2)
        moved = train.shifted(3e-6)
        assert np.allclose(moved.times, train.times + 3e-6)
        assert np.array_equal(moved.deltas, train.deltas)


class TestAssembleVoltage:
    def test_linearity_in_amplitude(self, library):
        t = np.linspace(0, 5e-6, 2000)
        small = assemble_voltage(
            library, "a", [edges_from_square_wave("load", 1.0, 1e6, 3)], t
        )
        large = assemble_voltage(
            library, "a", [edges_from_square_wave("load", 2.0, 1e6, 3)], t
        )
        assert np.allclose(large, 2.0 * small, atol=1e-9)

    def test_superposition_of_trains(self, library):
        t = np.linspace(0, 5e-6, 2000)
        a = edges_from_square_wave("load", 1.0, 1e6, 3)
        b = edges_from_square_wave("load", 1.0, 1e6, 3, start=0.3e-6)
        combined = assemble_voltage(library, "a", [a, b], t)
        separate = assemble_voltage(library, "a", [a], t) + assemble_voltage(
            library, "a", [b], t
        )
        assert np.allclose(combined, separate, atol=1e-12)

    def test_current_returns_to_baseline_after_burst(self, library):
        # After the burst and settling, the deviation returns to ~0
        # (equal numbers of rising and falling edges).
        t = np.array([200e-6])
        train = edges_from_square_wave("load", 5.0, 1e6, 4)
        v = assemble_voltage(library, "a", [train], t)
        assert abs(v[0]) < 1e-4

    def test_baseline_adds_dc(self, library):
        t = np.linspace(0, 1e-6, 50)
        quiet = assemble_voltage(library, "a", [], t, baseline={"load": 2.0})
        assert np.allclose(quiet, 2.0 * library.dc("load", "a"))

    def test_mismatched_train_shapes_rejected(self):
        with pytest.raises(SolverError):
            EdgeTrain("load", np.array([0.0, 1.0]), np.array([1.0]))
