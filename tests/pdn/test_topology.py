"""Chip topology and calibrated reference parameter tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.pdn.impedance import find_resonances, impedance_profile
from repro.pdn.state_space import ModalSystem, build_state_space
from repro.pdn.topology import (
    NORTH_CORES,
    SOUTH_CORES,
    ChipPdnParameters,
    build_chip_netlist,
    core_node,
    core_port,
)
from repro.pdn.zec12 import reference_chip_parameters


class TestParameters:
    def test_defaults_validate(self):
        ChipPdnParameters()

    def test_variation_vectors_checked(self):
        with pytest.raises(ConfigError):
            ChipPdnParameters(core_r_scale=(1.0,) * 5)

    def test_positive_values_checked(self):
        with pytest.raises(ConfigError):
            ChipPdnParameters(c_l3=-1.0)

    def test_with_variation(self):
        params = reference_chip_parameters().with_variation(
            (1.1,) * 6, (0.9,) * 6
        )
        assert params.core_r_scale == (1.1,) * 6

    def test_without_deep_trench_scales_capacitance(self):
        base = reference_chip_parameters()
        thin = base.without_deep_trench(40.0)
        assert thin.c_l3 == pytest.approx(base.c_l3 / 40.0)
        assert thin.c_core == pytest.approx(base.c_core / 40.0)
        with pytest.raises(ConfigError):
            base.without_deep_trench(0.5)

    def test_row_constants(self):
        assert set(NORTH_CORES) | set(SOUTH_CORES) == set(range(6))
        assert not set(NORTH_CORES) & set(SOUTH_CORES)


class TestNetlistShape:
    def test_builds_and_validates(self, chip_netlist):
        assert len(chip_netlist.current_ports) == 9  # 6 cores + l3/mcu/gx
        assert len(chip_netlist.voltage_ports) == 1

    def test_core_names(self):
        assert core_node(3) == "core3"
        assert core_port(5) == "load_core5"

    def test_every_core_has_port_and_cap(self, chip_netlist):
        port_nodes = {p.node for p in chip_netlist.current_ports}
        for core in range(6):
            assert core_node(core) in port_nodes
            chip_netlist.capacitor_at(core_node(core))


class TestCalibration:
    """The reference chip must reproduce the paper's PDN shape."""

    @pytest.fixture(scope="class")
    def profile(self, chip_netlist):
        return impedance_profile(chip_netlist, "load_core0", "core0", 1e3, 1e9)

    def test_first_droop_band(self, profile):
        peak_f, _ = profile.peak()
        # The paper: first droop shifted to the 1-5 MHz range.
        assert 1e6 < peak_f < 5e6

    def test_low_frequency_band(self, profile):
        peaks = find_resonances(profile)
        low = [f for f, _ in peaks if f < 1e5]
        assert low, "expected a low-frequency (tens of kHz) resonance"
        assert 2e4 < low[0] < 8e4

    def test_first_droop_dominates(self, profile):
        peaks = find_resonances(profile)
        assert peaks[0][0] > 1e6  # biggest peak is the MHz band

    def test_no_oscillatory_band_above_5mhz(self, profile):
        peak_z = profile.peak()[1]
        mask = profile.freqs_hz > 5e6
        assert profile.ohms[mask].max() < peak_z

    def test_deep_trench_ablation_shifts_first_droop_up(self, chip_netlist):
        thin = build_chip_netlist(
            reference_chip_parameters().without_deep_trench(40.0)
        )
        base_peak = impedance_profile(
            chip_netlist, "load_core0", "core0", 1e5, 1e9
        ).peak()[0]
        thin_peak = impedance_profile(
            thin, "load_core0", "core0", 1e5, 1e9
        ).peak()[0]
        # Removing the deep-trench decap moves the droop toward the
        # traditional 30-100 MHz band.
        assert thin_peak > 4 * base_peak
        assert thin_peak > 8e6


class TestPropagationStructure:
    def test_same_row_couples_more_strongly(self, chip_netlist):
        modal = ModalSystem(build_state_space(chip_netlist))
        t = np.linspace(0, 3e-6, 2000)
        response = modal.step_response(
            "load_core0", [core_node(c) for c in range(6)], t
        )
        droops = [-response[c].min() for c in range(6)]
        same_row = [droops[c] for c in (2, 4)]
        cross_row = [droops[c] for c in (1, 3, 5)]
        assert min(same_row) > max(cross_row)

    def test_own_node_droops_most(self, chip_netlist):
        modal = ModalSystem(build_state_space(chip_netlist))
        t = np.linspace(0, 3e-6, 2000)
        response = modal.step_response(
            "load_core0", [core_node(c) for c in range(6)], t
        )
        droops = [-response[c].min() for c in range(6)]
        assert droops[0] == max(droops)
