"""Tests for netlist construction and structural validation."""

import pytest

from repro.errors import NetlistError
from repro.pdn.netlist import Netlist


def minimal_net() -> Netlist:
    net = Netlist("t")
    net.add_voltage_port("vin", "src")
    net.add_resistor("r1", "src", "a", 1.0)
    net.add_capacitor("c1", "a", 1e-6, esr=1e-3)
    return net


class TestConstruction:
    def test_valid_minimal(self):
        minimal_net().validate()

    def test_nodes_exclude_ground(self):
        net = minimal_net()
        net.add_resistor("r2", "a", "gnd", 2.0)
        assert "gnd" not in net.nodes
        assert set(net.nodes) == {"src", "a"}

    def test_free_vs_pinned(self):
        net = minimal_net()
        assert net.pinned_nodes == {"src"}
        assert net.free_nodes == ["a"]

    def test_input_ordering_loads_then_sources(self):
        net = minimal_net()
        net.add_current_port("load", "a")
        assert net.input_names == ["load", "vin"]


class TestValidation:
    def test_duplicate_element_names_rejected(self):
        net = minimal_net()
        net.add_resistor("r1", "a", "gnd", 1.0)
        with pytest.raises(NetlistError, match="duplicate"):
            net.validate()

    def test_duplicate_names_across_port_kinds_rejected(self):
        net = minimal_net()
        net.add_current_port("vin", "a")
        with pytest.raises(NetlistError, match="shared"):
            net.validate()

    def test_free_node_without_capacitor_rejected(self):
        net = minimal_net()
        net.add_resistor("r2", "a", "b", 1.0)  # node b has no capacitor
        with pytest.raises(NetlistError, match="capacitors"):
            net.validate()

    def test_free_node_with_two_capacitors_rejected(self):
        net = minimal_net()
        net.add_capacitor("c2", "a", 1e-6, esr=1e-3)
        with pytest.raises(NetlistError, match="capacitors"):
            net.validate()

    def test_disconnected_island_rejected(self):
        # A pinned node with no branches at all is unreachable from
        # ground (free nodes always reach ground through their cap, so
        # the capacitor-coverage check fires first for those).
        net = minimal_net()
        net.add_voltage_port("vaux", "island")
        with pytest.raises(NetlistError, match="not connected"):
            net.validate()

    def test_doubly_pinned_node_rejected(self):
        net = minimal_net()
        net.add_voltage_port("vin2", "src")
        with pytest.raises(NetlistError, match="more than one voltage port"):
            net.validate()

    def test_capacitor_on_pinned_node_rejected(self):
        net = minimal_net()
        net.add_capacitor("c9", "src", 1e-6, esr=1e-3)
        with pytest.raises(NetlistError, match="pinned"):
            net.validate()

    def test_capacitor_at_lookup(self):
        net = minimal_net()
        assert net.capacitor_at("a").name == "c1"
        with pytest.raises(NetlistError):
            net.capacitor_at("src")

    def test_empty_netlist_rejected(self):
        with pytest.raises(NetlistError):
            Netlist("empty").validate()
