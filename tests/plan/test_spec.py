"""Plan specs: fingerprint parity with the engine, cross-process
stability, order-invariance properties."""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import SimulationSession
from repro.engine.fingerprint import chip_fingerprint
from repro.machine.chip import ChipConfig
from repro.machine.runner import RunOptions
from repro.plan import PlannedRun, RunPlan, chip_identity

from .conftest import square_wave


class TestChipIdentity:
    def test_matches_built_chip_fingerprint(self, chip):
        assert chip_identity(chip.config, chip.chip_id) == chip_fingerprint(chip)

    def test_distinct_chip_ids_distinct_identities(self):
        config = ChipConfig()
        assert chip_identity(config, 0) != chip_identity(config, 1)


class TestFingerprintParity:
    def test_planned_run_matches_session_fingerprint(self, chip):
        """The planner's content address is byte-identical to what the
        executing session computes — the property pre-execution dedup
        rests on."""
        options = RunOptions(segments=2, base_samples=1024)
        session = SimulationSession(chip, options)
        mapping = [square_wave()] * 3 + [None] * 3
        for tag in ("run", ("fsweep", True, 2.6e6)):
            planned = PlannedRun(
                mapping=tuple(mapping), tag=tag, options=options
            )
            assert planned.fingerprint(
                chip_identity(chip.config, chip.chip_id)
            ) == session.fingerprint(mapping, tag)


def _spec_script() -> str:
    """A self-contained script printing the fingerprint of a fixed
    plan — run in a fresh interpreter to prove process independence."""
    return textwrap.dedent(
        """
        from repro.machine.chip import ChipConfig
        from repro.machine.runner import RunOptions
        from repro.machine.workload import CurrentProgram, SyncSpec
        from repro.plan import RunPlan, chip_identity

        program = CurrentProgram(
            "m", i_low=14.0, i_high=32.0, freq_hz=2.6e6, rise_time=11e-9,
            sync=SyncSpec(),
        )
        plan = RunPlan(chip_fp=chip_identity(ChipConfig(), 0))
        plan.add([program] * 6, ("fsweep", True, 2.6e6),
                 RunOptions(segments=2), figure="fig9")
        plan.add([program] * 3 + [None] * 3, "vmin",
                 RunOptions(segments=2), figure="fig12")
        print(plan.fingerprint())
        """
    )


class TestCrossProcessStability:
    def test_fingerprint_stable_across_processes(self):
        """Two fresh interpreters agree on the plan fingerprint — no
        per-process hash seeding, id()s or dict-order dependence."""
        env = dict(os.environ, PYTHONHASHSEED="random")
        outputs = {
            subprocess.run(
                [sys.executable, "-c", _spec_script()],
                capture_output=True, text=True, check=True, env=env,
            ).stdout.strip()
            for _ in range(2)
        }
        assert len(outputs) == 1
        fingerprint = outputs.pop()
        assert len(fingerprint) == 64
        int(fingerprint, 16)  # hex content key


def _options(draw) -> RunOptions:
    return RunOptions(
        segments=draw(st.integers(min_value=1, max_value=8)),
        base_samples=draw(st.sampled_from([512, 1024, 2048])),
        seed=draw(st.integers(min_value=0, max_value=3)),
    )


@st.composite
def planned_runs(draw):
    n_loaded = draw(st.integers(min_value=1, max_value=6))
    sync = draw(st.booleans())
    mapping = tuple(
        [square_wave(sync=sync)] * n_loaded + [None] * (6 - n_loaded)
    )
    tag = draw(
        st.sampled_from(["run", "vmin", ("fsweep", True, 2.6e6)])
    )
    return PlannedRun(mapping=mapping, tag=tag, options=_options(draw))


class TestPlanFingerprintProperties:
    @settings(max_examples=25, deadline=None)
    @given(runs=st.lists(planned_runs(), min_size=1, max_size=6),
           seed=st.randoms())
    def test_order_and_duplication_invariant(self, runs, seed):
        """A plan's fingerprint depends on the *set* of requested runs,
        not their order or multiplicity."""
        chip_fp = chip_identity(ChipConfig(), 0)
        ordered = RunPlan(chip_fp=chip_fp, runs=list(runs))
        shuffled_runs = list(runs)
        seed.shuffle(shuffled_runs)
        shuffled = RunPlan(chip_fp=chip_fp, runs=shuffled_runs)
        duplicated = RunPlan(chip_fp=chip_fp, runs=list(runs) + [runs[0]])
        assert ordered.fingerprint() == shuffled.fingerprint()
        assert ordered.fingerprint() == duplicated.fingerprint()

    @settings(max_examples=25, deadline=None)
    @given(run=planned_runs())
    def test_figures_do_not_change_the_address(self, run):
        """Figure attribution is metadata: the same run requested by
        different figures must dedup to one execution."""
        chip_fp = chip_identity(ChipConfig(), 0)
        assert run.fingerprint(chip_fp) == run.with_figures(
            {"fig7a", "fig9"}
        ).fingerprint(chip_fp)


class TestRunPlanStructure:
    def test_extend_requires_same_chip(self):
        a = RunPlan(chip_fp=chip_identity(ChipConfig(), 0))
        b = RunPlan(chip_fp=chip_identity(ChipConfig(), 1))
        with pytest.raises(ValueError):
            a.extend(b)

    def test_tagged_attributes_every_run(self):
        plan = RunPlan(chip_fp=chip_identity(ChipConfig(), 0))
        plan.add([square_wave()] * 6, "run", RunOptions(segments=2))
        tagged = plan.tagged("fig9")
        assert all(run.figures == {"fig9"} for run in tagged)
        # the original is untouched (tagged() returns a copy)
        assert all(run.figures == frozenset() for run in plan)
