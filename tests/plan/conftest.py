"""Plan-layer fixtures: a minimal-cost experiment context and cheap
planned-run building blocks."""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentContext
from repro.machine.runner import RunOptions
from repro.machine.workload import CurrentProgram, SyncSpec


@pytest.fixture(scope="module")
def tiny_context(generator, chip):
    """The cheapest context that still exercises every compiler path:
    one frequency point per decade, one placement per distribution."""
    return ExperimentContext(
        generator=generator,
        chip=chip,
        options=RunOptions(segments=2, base_samples=1024),
        freq_points_per_decade=1,
        delta_i_placements=1,
        misalignment_assignments=1,
    )


def square_wave(name: str = "m", sync: bool = True) -> CurrentProgram:
    """A resonant square-wave program (synchronized by default)."""
    return CurrentProgram(
        name, i_low=14.0, i_high=32.0, freq_hz=2.6e6, rise_time=11e-9,
        sync=SyncSpec() if sync else None,
    )
