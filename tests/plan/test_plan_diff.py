"""Plan diff (``plan --since``): remaining runs vs a campaign manifest."""

from __future__ import annotations

from repro.engine import CampaignManifest
from repro.machine.chip import ChipConfig
from repro.machine.runner import RunOptions
from repro.plan import CampaignPlan, RunPlan, chip_identity
from repro.plan.execute import run_point_id

from .conftest import square_wave

CHIP_FP = chip_identity(ChipConfig(), 0)
OPTIONS = RunOptions(segments=2)


def _campaign(core_counts=(1, 2, 3)) -> CampaignPlan:
    plan = RunPlan(chip_fp=CHIP_FP)
    for count in core_counts:
        mapping = [square_wave()] * count + [None] * (6 - count)
        plan.add(mapping, ("mapping", count), OPTIONS, "fig7a")
    return CampaignPlan.compile([plan])


class TestRemaining:
    def test_nothing_completed_everything_remains(self):
        campaign = _campaign()
        remaining = campaign.remaining(set())
        assert [e.fingerprint for e in remaining] == list(campaign.unique)

    def test_everything_completed_nothing_remains(self):
        campaign = _campaign()
        assert campaign.remaining(set(campaign.unique)) == []

    def test_partial_completion_preserves_first_request_order(self):
        campaign = _campaign()
        fingerprints = list(campaign.unique)
        remaining = campaign.remaining({fingerprints[1]})
        assert [e.fingerprint for e in remaining] == [
            fingerprints[0], fingerprints[2]
        ]

    def test_accepts_run_prefixed_point_ids(self):
        """Manifests checkpoint run-level completion as
        ``run:<fingerprint>`` — the diff must accept that form as-is."""
        campaign = _campaign()
        fingerprints = list(campaign.unique)
        remaining = campaign.remaining({run_point_id(fingerprints[0])})
        assert fingerprints[0] not in [e.fingerprint for e in remaining]
        assert len(remaining) == len(fingerprints) - 1

    def test_foreign_completions_ignored(self):
        campaign = _campaign()
        remaining = campaign.remaining({"run:deadbeef", "fig12"})
        assert len(remaining) == campaign.total_unique


class TestAgainstManifest:
    def test_manifest_completed_feeds_straight_in(self, tmp_path):
        """End-to-end shape of ``plan --since``: a manifest whose
        run-level checkpoints came from a (partial) shard execution."""
        campaign = _campaign()
        fingerprints = list(campaign.unique)
        manifest = CampaignManifest(tmp_path / "campaign-manifest.json")
        manifest.mark_started(run_point_id(fingerprints[0]))
        manifest.mark_complete(run_point_id(fingerprints[0]))
        # A started-but-unfinished run still counts as remaining.
        manifest.mark_started(run_point_id(fingerprints[1]))

        remaining = campaign.remaining(manifest.completed)
        assert [e.fingerprint for e in remaining] == [
            fingerprints[1], fingerprints[2]
        ]

    def test_experiment_level_completions_do_not_mask_runs(self, tmp_path):
        campaign = _campaign()
        manifest = CampaignManifest(tmp_path / "campaign-manifest.json")
        manifest.mark_started("fig7a")
        manifest.mark_complete("fig7a")  # experiment-level, not run-level
        assert len(campaign.remaining(manifest.completed)) == 3
