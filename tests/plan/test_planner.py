"""Campaign planner: merge, dedup accounting, shard partitioning."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.machine.chip import ChipConfig
from repro.machine.runner import RunOptions
from repro.plan import CampaignPlan, RunPlan, ShardSpec, chip_identity

from .conftest import square_wave

CHIP_FP = chip_identity(ChipConfig(), 0)
OPTIONS = RunOptions(segments=2)


def _plan(figure: str, core_counts: list[int]) -> RunPlan:
    """One run per entry, loading that many cores (distinct mappings →
    distinct fingerprints; tags alone would not differentiate
    deterministic runs)."""
    plan = RunPlan(chip_fp=CHIP_FP)
    for count in core_counts:
        mapping = [square_wave()] * count + [None] * (6 - count)
        plan.add(mapping, ("mapping", count), OPTIONS, figure)
    return plan


class TestCompileAndDedup:
    def test_shared_runs_collapse(self):
        a = _plan("fig7a", [1, 2])
        b = _plan("fig9", [2, 3])  # the 2-core run is shared with fig7a
        campaign = CampaignPlan.compile([a, b])
        assert campaign.total_requested == 4
        assert campaign.total_unique == 3
        assert campaign.dedup_savings == 1
        shared = [
            entry
            for entry in campaign.unique.values()
            if entry.figures == {"fig7a", "fig9"}
        ]
        assert len(shared) == 1 and shared[0].requests == 2

    def test_summary_accounting(self):
        campaign = CampaignPlan.compile(
            [_plan("fig7a", [1, 2]), _plan("fig9", [2, 3])]
        )
        summary = campaign.summary()
        assert summary["requested_by_figure"] == {"fig7a": 2, "fig9": 2}
        assert summary["unique_by_figure"] == {"fig7a": 2, "fig9": 2}
        assert summary["exclusive_by_figure"] == {"fig7a": 1, "fig9": 1}
        assert summary["requested"] == 4
        assert summary["unique"] == 3
        assert summary["dedup_savings"] == 1

    def test_empty_campaign_refused(self):
        with pytest.raises(ConfigError):
            CampaignPlan.compile([])

    def test_mixed_chips_refused(self):
        other = RunPlan(chip_fp=chip_identity(ChipConfig(), 1))
        with pytest.raises(ConfigError):
            CampaignPlan.compile([_plan("fig7a", [1]), other])

    def test_fingerprint_independent_of_merge_order(self):
        a, b = _plan("fig7a", [1, 2]), _plan("fig9", [2, 3])
        assert (
            CampaignPlan.compile([a, b]).fingerprint()
            == CampaignPlan.compile([b, a]).fingerprint()
        )

    def test_estimate_seconds(self):
        campaign = CampaignPlan.compile([_plan("fig7a", [1, 2])])
        assert campaign.estimate_seconds(None) is None
        assert campaign.estimate_seconds(3.0) == pytest.approx(6.0)
        assert campaign.estimate_seconds(3.0, jobs=4) == pytest.approx(1.5)

    def test_estimate_seconds_scales_by_fleet_size(self):
        campaign = CampaignPlan.compile([_plan("fig7a", [1, 2])])
        assert campaign.estimate_seconds(3.0, workers=2) == pytest.approx(3.0)
        # Fleet workers and per-worker jobs compose multiplicatively.
        assert campaign.estimate_seconds(
            3.0, jobs=2, workers=3
        ) == pytest.approx(1.0)
        # Degenerate sizes clamp to serial rather than dividing by zero.
        assert campaign.estimate_seconds(3.0, workers=0) == pytest.approx(6.0)


class TestSharding:
    def _campaign(self) -> CampaignPlan:
        return CampaignPlan.compile(
            [_plan("fig7a", list(range(1, 7)) + [0])]
        )

    @pytest.mark.parametrize("count", [1, 2, 3, 5])
    def test_shards_partition_the_plan(self, count):
        campaign = self._campaign()
        seen: list[str] = []
        for index in range(count):
            seen.extend(
                entry.fingerprint
                for entry in campaign.shard(ShardSpec(index, count))
            )
        assert sorted(seen) == sorted(campaign.unique)
        assert len(seen) == len(set(seen))  # disjoint

    def test_shard_sizes_match_slices(self):
        campaign = self._campaign()
        sizes = campaign.shard_sizes(3)
        assert sizes == [
            len(campaign.shard(ShardSpec(index, 3))) for index in range(3)
        ]
        assert sum(sizes) == campaign.total_unique

    def test_none_shard_is_everything(self):
        campaign = self._campaign()
        assert len(campaign.shard(None)) == campaign.total_unique


class TestShardSpec:
    def test_parse_roundtrip(self):
        spec = ShardSpec.parse("1/3")
        assert (spec.index, spec.count) == (1, 3)
        assert str(spec) == "1/3"

    @pytest.mark.parametrize("text", ["", "3", "3/2", "-1/2", "a/b", "1/0"])
    def test_parse_rejects_bad_specs(self, text):
        with pytest.raises(ConfigError):
            ShardSpec.parse(text)

    @settings(max_examples=50, deadline=None)
    @given(
        fingerprint=st.text(alphabet="0123456789abcdef", min_size=16,
                            max_size=64),
        count=st.integers(min_value=1, max_value=16),
    )
    def test_partition_is_total_and_deterministic(self, fingerprint, count):
        """Every fingerprint belongs to exactly one shard, and the
        assignment is a pure function of (fingerprint, count)."""
        owners = [
            index
            for index in range(count)
            if ShardSpec(index, count).owns(fingerprint)
        ]
        assert len(owners) == 1
        assert owners[0] == ShardSpec.partition(fingerprint, count)
        assert ShardSpec.partition(fingerprint, count) == ShardSpec.partition(
            fingerprint, count
        )
