"""Plan execution: the planner's dedup accounting is exactly what the
engine executes, and replays are free."""

from __future__ import annotations

import json

import pytest

from repro.engine import ResultCache
from repro.errors import ConfigError
from repro.experiments import compile_campaign
from repro.obs import Telemetry
from repro.plan import execute_plan, run_point_id
from repro.engine import CampaignManifest

FIGURES = ["fig7a", "fig9", "fig11a"]


@pytest.fixture(scope="module")
def campaign(tiny_context):
    return compile_campaign(FIGURES, tiny_context)


class TestDedupEqualsExecuted:
    def test_mixed_campaign(self, campaign, tiny_context):
        """The acceptance property: on a cold cache, the engine executes
        exactly the planner's deduplicated run count — requested minus
        dedup savings — for the mixed fig7a+fig9+fig11a campaign."""
        assert campaign.dedup_savings > 0  # fig7a ⊂ fig9 must overlap
        telemetry = Telemetry()
        report = execute_plan(
            campaign,
            tiny_context.chip,
            cache=ResultCache(telemetry=telemetry),
            executor="serial",
            telemetry=telemetry,
        )
        assert report.runs == campaign.total_unique
        assert report.executed == campaign.total_unique
        assert report.executed == campaign.total_requested - campaign.dedup_savings
        assert report.replayed == 0
        assert report.failed == 0
        assert telemetry.counter("engine.runs_executed") == campaign.total_unique

    def test_second_execution_replays_everything(self, campaign, tiny_context):
        telemetry = Telemetry()
        cache = ResultCache(telemetry=telemetry)
        execute_plan(
            campaign, tiny_context.chip, cache=cache,
            executor="serial", telemetry=telemetry,
        )
        report = execute_plan(
            campaign, tiny_context.chip, cache=cache,
            executor="serial", telemetry=telemetry,
        )
        assert report.executed == 0
        assert report.replayed == campaign.total_unique


class TestBackendPropagation:
    def test_backends_share_one_cache(self, campaign, tiny_context):
        """Cache-key neutrality through the plan layer: a campaign
        executed on the batched backend replays for free on the
        reference backend (and the results agree)."""
        telemetry = Telemetry()
        cache = ResultCache(telemetry=telemetry)
        cold = execute_plan(
            campaign, tiny_context.chip, cache=cache,
            executor="serial", telemetry=telemetry, backend="batched",
        )
        assert cold.executed == campaign.total_unique
        assert telemetry.histogram("engine.run.batched.seconds") is not None
        warm = execute_plan(
            campaign, tiny_context.chip, cache=cache,
            executor="serial", telemetry=telemetry, backend="reference",
        )
        assert warm.executed == 0
        assert warm.replayed == campaign.total_unique
        assert set(warm.results) == set(cold.results)

    def test_invalid_backend_refused(self, campaign, tiny_context):
        with pytest.raises(ConfigError):
            execute_plan(campaign, tiny_context.chip, backend="warp")


class TestManifestCheckpointing:
    def test_run_points_recorded(self, campaign, tiny_context, tmp_path):
        telemetry = Telemetry()
        manifest = CampaignManifest(tmp_path / "campaign-manifest.json")
        report = execute_plan(
            campaign,
            tiny_context.chip,
            cache=ResultCache(telemetry=telemetry),
            executor="serial",
            manifest=manifest,
            telemetry=telemetry,
        )
        completed = manifest.completed
        for fingerprint in report.results:
            assert run_point_id(fingerprint) in completed
        assert "shard:full" in completed
        assert manifest.campaign == {
            "plan": campaign.fingerprint(), "shard": None,
        }
        assert not manifest.lock_path.exists()  # released


class TestByWorkerSummary:
    def test_fleet_accounting_rides_in_the_summary(self):
        from repro.plan.execute import ExecutionReport

        report = ExecutionReport(
            plan="p", shard=None, runs=4, executed=4,
            by_worker={
                "w1": {"completed": 1, "stolen": 1, "failed": 0},
                "w0": {"completed": 3, "stolen": 0, "failed": 0},
            },
        )
        summary = report.summary()
        assert list(summary["by_worker"]) == ["w0", "w1"]  # sorted
        assert summary["stolen"] == 1
        assert json.loads(json.dumps(summary)) == summary

    def test_single_process_summary_stays_lean(self):
        from repro.plan.execute import ExecutionReport

        summary = ExecutionReport(plan="p", shard=None, runs=1).summary()
        assert "by_worker" not in summary
        assert "stolen" not in summary


class TestChipMismatch:
    def test_wrong_chip_refused(self, campaign):
        from repro.machine.chip import Chip, ChipConfig

        other = Chip(ChipConfig(), chip_id=99)
        with pytest.raises(ConfigError):
            execute_plan(campaign, other)
