"""Family campaigns: per-member compilation, honest accounting, global
sharding, and execution grouped by chip.

Two constants are pinned as cross-PR regression guards: the quick
family's fig11a accounting and the default member's plan fingerprint.
The default member (``quick/cores6``) *is* the reference chip, so its
plan fingerprint must be byte-identical to the standalone single-chip
compile — that is the plan-layer face of default-chip cache-key
neutrality.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.chips import ChipFamily, ChipSpec, get_family
from repro.engine import ResultCache
from repro.errors import ConfigError
from repro.experiments import compile_campaign, compile_family_campaign
from repro.experiments.common import context_for_spec
from repro.machine.runner import RunOptions
from repro.obs import Telemetry
from repro.plan import (
    CampaignPlan,
    FamilyCampaign,
    RunPlan,
    ShardSpec,
    execute_family,
)

from .conftest import square_wave

#: ``quick/cores6`` fig11a plan fingerprint at the quick tier — equal to
#: the standalone single-chip compile by the neutrality guarantee.
DEFAULT_MEMBER_PLAN_FP = (
    "7712ec8c06900b26ad18d4086b7fe6e9848648616752bed52395f2ff9d33554f"
)
#: Unique runs per quick-family member for fig11a (cores4/cores6/cores8):
#: the ΔI placement count grows with the core count.
QUICK_FIG11A_UNIQUES = [27, 53, 87]


@pytest.fixture(scope="module")
def quick_campaign():
    return compile_family_campaign(["fig11a"], "quick", quick=True)


class TestQuickFamilyPins:
    def test_member_accounting(self, quick_campaign):
        assert [entry.name for entry in quick_campaign.members] == [
            "quick/cores4", "quick/cores6", "quick/cores8",
        ]
        assert [
            entry.plan.total_unique for entry in quick_campaign.members
        ] == QUICK_FIG11A_UNIQUES
        assert quick_campaign.total_unique == sum(QUICK_FIG11A_UNIQUES)

    def test_default_member_plan_matches_standalone(self, quick_campaign):
        """Neutrality: the family's reference member compiles to exactly
        the plan a standalone quick-tier compile produces."""
        member = quick_campaign.member("cores6")
        assert member.plan.fingerprint() == DEFAULT_MEMBER_PLAN_FP
        context = context_for_spec(ChipSpec(), quick=True)
        standalone = compile_campaign(["fig11a"], context)
        assert standalone.fingerprint() == DEFAULT_MEMBER_PLAN_FP

    def test_cross_member_dedup_is_impossible(self, quick_campaign):
        """Run fingerprints embed chip identity, so family totals are
        honest sums — all dedup happens within members."""
        assert quick_campaign.total_unique == sum(
            entry.plan.total_unique for entry in quick_campaign.members
        )
        fingerprints = [
            fp
            for entry in quick_campaign.members
            for fp in entry.plan.unique
        ]
        assert len(fingerprints) == len(set(fingerprints))

    def test_global_shard_partitions_the_family(self, quick_campaign):
        sizes = quick_campaign.shard_sizes(2)
        assert sum(sizes) == quick_campaign.total_unique
        assert sizes == [
            quick_campaign.shard_runs(ShardSpec.parse("0/2")),
            quick_campaign.shard_runs(ShardSpec.parse("1/2")),
        ]

    def test_fingerprint_is_member_order_independent(self, quick_campaign):
        family = get_family("quick")
        reversed_campaign = compile_family_campaign(
            ["fig11a"], family,
            quick=True, members=tuple(reversed(family.members())),
        )
        assert (
            reversed_campaign.fingerprint() == quick_campaign.fingerprint()
        )

    def test_member_lookup(self, quick_campaign):
        entry = quick_campaign.member("quick/cores8")
        assert quick_campaign.member("cores8") is entry
        assert quick_campaign.member(entry.chip_digest) is entry
        with pytest.raises(ConfigError):
            quick_campaign.member("cores5")


CHEAP = RunOptions(segments=1, base_samples=64, events_cap=40)


def _tiny_plan_for(spec: ChipSpec) -> CampaignPlan:
    """Two cheap runs per member: a two-core pair and a full load."""
    plan = RunPlan(chip_fp=spec.identity())
    pair = [square_wave()] * 2 + [None] * (spec.n_cores - 2)
    plan.add(pair, ("pair",), CHEAP, "figX")
    plan.add([square_wave()] * spec.n_cores, ("full",), CHEAP, "figX")
    return CampaignPlan.compile([plan])


@pytest.fixture(scope="module")
def tiny_family():
    return ChipFamily(
        name="tiny",
        description="two cheap members for execution tests",
        axes=(("n_cores", (4, 6)),),
    )


class TestCompileValidation:
    def test_duplicate_silicon_refused(self, tiny_family):
        spec = ChipSpec(name="tiny/a", n_cores=4)
        twin = dataclasses.replace(spec, name="tiny/b")
        with pytest.raises(ConfigError, match="same chip"):
            FamilyCampaign.compile(
                tiny_family, _tiny_plan_for, members=(spec, twin)
            )

    def test_plan_bound_to_wrong_chip_refused(self, tiny_family):
        def wrong_chip_plan(spec: ChipSpec) -> CampaignPlan:
            return _tiny_plan_for(ChipSpec(n_cores=8))

        with pytest.raises(ConfigError, match="different chip"):
            FamilyCampaign.compile(tiny_family, wrong_chip_plan)

    def test_empty_member_list_refused(self, tiny_family):
        with pytest.raises(ConfigError, match="no members"):
            FamilyCampaign.compile(tiny_family, _tiny_plan_for, members=())


class TestExecuteFamily:
    def test_cold_then_warm(self, tiny_family):
        campaign = FamilyCampaign.compile(tiny_family, _tiny_plan_for)
        telemetry = Telemetry()
        cache = ResultCache(telemetry=telemetry)
        cold = execute_family(
            campaign, cache=cache, executor="serial", telemetry=telemetry
        )
        assert cold.executed == campaign.total_unique == 4
        assert cold.replayed == cold.failed == 0
        assert set(cold.reports) == {"tiny/cores4", "tiny/cores6"}
        assert all(
            report.executed == 2 for report in cold.reports.values()
        )
        warm = execute_family(
            campaign, cache=cache, executor="serial", telemetry=telemetry
        )
        assert warm.executed == 0
        assert warm.replayed == campaign.total_unique

    def test_global_shards_cover_the_family(self, tiny_family):
        """Executing every global shard is executing the family: the
        shard union replays the unsharded campaign completely."""
        campaign = FamilyCampaign.compile(tiny_family, _tiny_plan_for)
        telemetry = Telemetry()
        cache = ResultCache(telemetry=telemetry)
        executed = 0
        for index in range(2):
            report = execute_family(
                campaign,
                shard=ShardSpec.parse(f"{index}/2"),
                cache=cache, executor="serial", telemetry=telemetry,
            )
            assert report.shard == f"{index}/2"
            executed += report.executed
        assert executed == campaign.total_unique
        merged = execute_family(
            campaign, cache=cache, executor="serial", telemetry=telemetry
        )
        assert merged.executed == 0
        assert merged.replayed == campaign.total_unique
