"""Program IR, assembly emission and target binding tests."""

import pytest

from repro.errors import GenerationError
from repro.mbench.codegen import emit_assembly
from repro.mbench.loops import build_epi_loop, build_sequence_loop
from repro.mbench.program import InstructionInstance, Program
from repro.mbench.target import Target, default_target


class TestInstructionInstance:
    def test_operand_count_enforced(self, isa):
        cib = isa["CIB"]  # three operands
        with pytest.raises(GenerationError):
            InstructionInstance(cib, ("r1",))

    def test_render(self, isa):
        cib = isa["CIB"]
        inst = InstructionInstance(cib, ("r1", "7", "loop"))
        assert inst.render() == "CIB r1,7,loop"

    def test_render_no_operands(self, isa):
        srnm = isa["SRNM"]
        assert InstructionInstance(srnm, ()).render() == "SRNM"


class TestProgram:
    def test_empty_loop_rejected(self):
        with pytest.raises(GenerationError):
            Program(name="x", loop_body=[])

    def test_size_counts_prologue(self, isa):
        program = build_sequence_loop(isa, (isa["CIB"],), unroll=2)
        assert program.size == len(program.loop_body)


class TestCodegen:
    def test_emission_contains_label_and_body(self, isa):
        program = build_sequence_loop(
            isa, (isa["CIB"], isa["CHHSI"]), unroll=1, trip_count=1000
        )
        text = emit_assembly(program)
        assert f"{program.loop_label}:" in text
        assert "CIB" in text
        assert "CHHSI" in text
        assert "LHI r3,1000" in text  # trip-count setup

    def test_endless_loop_marker(self, isa):
        program = build_epi_loop(isa, isa["CIB"], repetitions=5)
        text = emit_assembly(program)
        assert "endless" in text

    def test_full_epi_body_is_emitted(self, isa):
        program = build_epi_loop(isa, isa["CIB"], repetitions=100)
        text = emit_assembly(program)
        assert text.count("CIB") >= 100


class TestTarget:
    def test_default_target_binds_reference_platform(self, target):
        assert len(target.isa) == 1301
        assert target.core.clock_hz == 5.5e9

    def test_profile_and_power(self, target):
        program = build_sequence_loop(isa=target.isa, sequence=(target.isa["CIB"],), unroll=24)
        profile = target.profile(program)
        estimate = target.power(program)
        assert profile.ipc > 0
        assert estimate.watts > target.core.static_power_w

    def test_energy_model_cached(self, target):
        assert target.energy_model is target.energy_model

    def test_idle_current(self, target):
        assert target.idle_current == pytest.approx(
            target.core.static_power_w / target.core.vnom
        )
