"""Microbenchmark loop builder tests."""

import pytest

from repro.errors import GenerationError
from repro.mbench.loops import (
    EPI_REPETITIONS,
    build_epi_loop,
    build_sequence_loop,
    find_loop_branch,
)


class TestEpiLoop:
    def test_paper_skeleton_shape(self, isa):
        program = build_epi_loop(isa, isa["CIB"])
        # 4000 repetitions + the loop-closing branch.
        assert len(program.loop_body) == EPI_REPETITIONS + 1
        assert program.trip_count is None  # endless loop

    def test_custom_repetitions(self, isa):
        program = build_epi_loop(isa, isa["CIB"], repetitions=50)
        assert len(program.loop_body) == 51

    def test_loop_closes_with_branch(self, isa):
        program = build_epi_loop(isa, isa["ADTR"], repetitions=10)
        assert program.loop_body[-1].definition.ends_group

    def test_no_dependencies_between_repetitions(self, isa):
        """Adjacent repetitions never write-read the same register."""
        program = build_epi_loop(isa, isa["CIB"], repetitions=30)
        # CIB reads two sources; check consecutive instances differ in
        # operand values where written operands exist.
        fixed_inst = next(
            inst for inst in isa if any(o.is_written for o in inst.operands)
        )
        program = build_epi_loop(isa, fixed_inst, repetitions=30)
        written_idx = [
            k for k, op in enumerate(fixed_inst.operands) if op.is_written
        ]
        for a, b in zip(program.loop_body[:-2], program.loop_body[1:-1]):
            for k in written_idx:
                read_ops = [
                    b.operand_values[j]
                    for j, op in enumerate(fixed_inst.operands)
                    if not op.is_written
                ]
                assert a.operand_values[k] not in read_ops

    def test_zero_repetitions_rejected(self, isa):
        with pytest.raises(GenerationError):
            build_epi_loop(isa, isa["CIB"], repetitions=0)


class TestSequenceLoop:
    def test_unrolling(self, isa):
        seq = (isa["CIB"], isa["CHHSI"])
        program = build_sequence_loop(isa, seq, unroll=5)
        assert len(program.loop_body) == 11  # 2*5 + branch

    def test_no_branch_variant(self, isa):
        program = build_sequence_loop(
            isa, (isa["SRNM"],), close_with_branch=False
        )
        assert len(program.loop_body) == 1

    def test_loop_definitions_view(self, isa):
        seq = (isa["CIB"],)
        program = build_sequence_loop(isa, seq, unroll=2)
        mnemonics = [d.mnemonic for d in program.loop_definitions]
        assert mnemonics[:2] == ["CIB", "CIB"]

    def test_empty_sequence_rejected(self, isa):
        with pytest.raises(GenerationError):
            build_sequence_loop(isa, ())

    def test_bad_unroll_rejected(self, isa):
        with pytest.raises(GenerationError):
            build_sequence_loop(isa, (isa["CIB"],), unroll=0)


class TestLoopBranchSelection:
    def test_prefers_branch_on_count(self, isa):
        branch = find_loop_branch(isa)
        assert branch.ends_group
        assert branch.mnemonic in ("BCT", "BCTG", "BRC", "J")

    def test_deterministic(self, isa):
        assert find_loop_branch(isa).mnemonic == find_loop_branch(isa).mnemonic
