"""GA baseline (AUDIT-style) tests."""

import pytest

from repro.core.genetic import genetic_max_power_search
from repro.errors import GenerationError
from repro.measure.powermeter import PowerMeter


@pytest.fixture(scope="module")
def ga_result(generator, target):
    candidates = generator.max_power_result.candidates
    return genetic_max_power_search(
        target,
        candidates,
        meter=PowerMeter(target, seed=5),
        population=16,
        generations=8,
        seed=1,
    )


class TestGeneticSearch:
    def test_finds_high_power_sequence(self, ga_result, target):
        # The GA should at least beat the best single-instruction loop.
        ceiling = target.core.floor_power_w * max(
            i.power_weight for i in target.isa
        )
        assert ga_result.power_w > ceiling

    def test_history_is_nondecreasing(self, ga_result):
        # Elitism keeps the best individual, so best-of-generation never
        # regresses (up to meter noise on re-evaluation, which the cache
        # eliminates).
        for earlier, later in zip(ga_result.history, ga_result.history[1:]):
            assert later >= earlier - 1e-9

    def test_evaluation_budget_reported(self, ga_result):
        assert ga_result.evaluations > 16  # more than one generation
        assert ga_result.generations == 8

    def test_deterministic_given_seed(self, generator, target):
        candidates = generator.max_power_result.candidates
        kwargs = dict(
            meter=PowerMeter(target, seed=5),
            population=8,
            generations=3,
            seed=7,
        )
        a = genetic_max_power_search(target, candidates, **kwargs)
        b = genetic_max_power_search(target, candidates, **kwargs)
        assert a.mnemonics == b.mnemonics

    def test_whitebox_beats_or_matches_ga(self, generator, ga_result):
        """The comparison the ablation bench makes: the systematic
        pipeline should find an equal or better sequence."""
        assert generator.max_power_result.power_w >= ga_result.power_w * 0.97

    def test_guards(self, generator, target):
        candidates = generator.max_power_result.candidates
        with pytest.raises(GenerationError):
            genetic_max_power_search(target, [], population=8)
        with pytest.raises(GenerationError):
            genetic_max_power_search(target, candidates, population=2)
        with pytest.raises(GenerationError):
            genetic_max_power_search(target, candidates, population=8, elite=8)
