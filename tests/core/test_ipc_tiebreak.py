"""IPC-filter tie-break tests — the lesson the GA baseline taught.

Many valid sequences tie at the maximum IPC; the filter must prefer the
energy-heavy ones among them (using only EPI-profile measurements), or
the thousand sequences handed to power evaluation can miss the true
winner — which is exactly how the GA baseline briefly out-searched the
white-box pipeline during development (ablation A3 guards this)."""

import pytest

from repro.core.filters import ipc_filter
from repro.isa.instruction import InstructionDef
from repro.uarch.resources import default_core_config

CFG = default_core_config()


def inst(mnemonic, unit="FXU", issue_class=None):
    return InstructionDef(
        mnemonic=mnemonic,
        description="t",
        family="fixed-point",
        unit=unit,
        issue_class=issue_class or f"{unit}.x",
    )


HOT = inst("HOT", unit="VXU")
WARM = inst("WARM", unit="BFU")
COLD = inst("COLD")
COLD2 = inst("COLD2")

# Both sequences dispatch as one full-width group and sustain
# 3 µops/cycle — a genuine IPC tie (2 FXU ops fit the two FXU pipes).
HOT_SEQ = (HOT, WARM, COLD)
MILD_SEQ = (COLD, COLD2, WARM)


class TestTieBreak:
    def test_sequences_actually_tie_on_ipc(self):
        from repro.uarch.throughput import analyze_loop

        assert analyze_loop(list(HOT_SEQ), CFG).ipc == pytest.approx(3.0)
        assert analyze_loop(list(MILD_SEQ), CFG).ipc == pytest.approx(3.0)

    def test_weights_order_equal_ipc_sequences(self):
        weights = {"HOT": 3.0, "WARM": 2.0, "COLD": 0.1, "COLD2": 0.1}
        kept, _ = ipc_filter([MILD_SEQ, HOT_SEQ], CFG, keep=1,
                             epi_weights=weights)
        assert kept == [HOT_SEQ]

    def test_without_weights_enumeration_order_wins(self):
        kept, _ = ipc_filter([MILD_SEQ, HOT_SEQ], CFG, keep=1)
        assert kept == [MILD_SEQ]

    def test_ipc_still_dominates_weights(self):
        # A lower-IPC sequence never outranks a higher-IPC one, no
        # matter how hot its members are.
        slow = inst("SLOW", unit="SYS")  # not serializing, but 1 unit
        fat = InstructionDef(
            mnemonic="FAT", description="t", family="fixed-point",
            unit="VXU", issue_class="VXU.x", uops=3,
        )
        low_ipc = (fat, fat, fat)  # VXU-bound: 9 uops / 9 cycles
        high_ipc = (COLD, COLD, COLD)
        weights = {"FAT": 100.0, "COLD": 0.0, "SLOW": 0.0}
        kept, _ = ipc_filter([low_ipc, high_ipc], CFG, keep=1,
                             epi_weights=weights)
        assert kept == [high_ipc]

    def test_search_winner_contains_single_instance_unit_pairs(self, generator):
        """With the energy-aware tie-break, the winner pairs up
        single-instance heavy units (the shape the GA found)."""
        from collections import Counter

        winner = generator.max_power_result.sequence
        units = Counter(inst.unit for inst in winner)
        single_instance_heavy = units.get("VXU", 0) + units.get("BFU", 0)
        assert single_instance_heavy >= 2

    def test_whitebox_matches_or_beats_true_model_optimum_nearby(
        self, generator, target
    ):
        """The measured winner's model power must be within noise of the
        best model power among the finalist pool's top entries."""
        from repro.uarch.power import estimate_loop_power

        result = generator.max_power_result
        winner_model = estimate_loop_power(
            list(result.sequence), target.energy_model
        ).watts
        assert result.power_w == pytest.approx(winner_model, rel=0.03)
