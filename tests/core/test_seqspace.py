"""The vectorized sequence-space search must be an exact drop-in for
the scalar enumerate → microarch_filter → ipc_filter chain: same
finalists, same order, same funnel statistics."""

from __future__ import annotations

import pytest

from repro.core.candidates import select_candidates
from repro.core.filters import FilterConstraints, ipc_filter, microarch_filter
from repro.core.seqspace import search_sequence_space
from repro.core.sequences import enumerate_sequences
from repro.errors import GenerationError


@pytest.fixture(scope="module")
def candidates(generator):
    return select_candidates(generator.epi_profile)


@pytest.fixture(scope="module")
def epi_weights(generator):
    static_share = 0.98
    return {
        entry.mnemonic: max(entry.normalized_power - static_share, 0.0)
        / max(entry.ipc, 1e-6)
        for entry in generator.epi_profile.entries
    }


def scalar_chain(pool, config, constraints, length, keep, epi_weights):
    survivors, micro_stats = microarch_filter(
        enumerate_sequences(pool, length=length), config, constraints
    )
    finalists, ipc_stats = ipc_filter(
        survivors, config, keep=keep, epi_weights=epi_weights
    )
    return finalists, micro_stats, ipc_stats


def assert_same_funnel(vector, scalar):
    v_final, v_micro, v_ipc = vector
    s_final, s_micro, s_ipc = scalar
    assert (v_micro.examined, v_micro.accepted) == (
        s_micro.examined,
        s_micro.accepted,
    )
    assert (v_ipc.examined, v_ipc.accepted) == (s_ipc.examined, s_ipc.accepted)
    assert len(v_final) == len(s_final)
    for fast, slow in zip(v_final, s_final):
        assert fast == slow  # InstructionDef tuples, position for position


class TestParity:
    @pytest.mark.parametrize("pool_size,length", [(6, 4), (9, 3)])
    def test_matches_scalar_chain(
        self, candidates, core_config, epi_weights, pool_size, length
    ):
        pool = candidates[:pool_size]
        args = (pool, core_config, None, length, 50, epi_weights)
        assert_same_funnel(
            search_sequence_space(
                pool, core_config, None, length=length, keep=50,
                epi_weights=epi_weights,
            ),
            scalar_chain(*args),
        )

    def test_matches_without_weights(self, candidates, core_config):
        """Tie-breaking falls back to pure enumeration order when no
        EPI weights are supplied — in both implementations."""
        pool = candidates[:5]
        assert_same_funnel(
            search_sequence_space(pool, core_config, None, length=4, keep=25),
            scalar_chain(pool, core_config, None, 4, 25, None),
        )

    def test_matches_custom_constraints(
        self, candidates, core_config, epi_weights
    ):
        constraints = FilterConstraints(
            required_group_size=2.0,
            max_branches=1,
            max_per_issue_class=3,
            max_memory=2,
        )
        pool = candidates[:6]
        assert_same_funnel(
            search_sequence_space(
                pool, core_config, constraints, length=4, keep=40,
                epi_weights=epi_weights,
            ),
            scalar_chain(pool, core_config, constraints, 4, 40, epi_weights),
        )

    def test_keep_larger_than_survivors(self, candidates, core_config):
        """keep beyond the survivor count returns every survivor."""
        pool = candidates[:4]
        finalists, micro, ipc = search_sequence_space(
            pool, core_config, None, length=3, keep=10**6
        )
        assert ipc.accepted == micro.accepted == len(finalists)


class TestErrors:
    def test_empty_pool(self, core_config):
        with pytest.raises(GenerationError):
            search_sequence_space([], core_config, None)

    def test_bad_length(self, candidates, core_config):
        with pytest.raises(GenerationError):
            search_sequence_space(
                candidates[:3], core_config, None, length=0
            )

    def test_bad_keep(self, candidates, core_config):
        with pytest.raises(GenerationError):
            search_sequence_space(
                candidates[:3], core_config, None, keep=0
            )
