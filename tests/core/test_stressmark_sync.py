"""Stressmark assembly and synchronization planning tests."""

import pytest

from repro.core.stressmark import StressmarkBuilder, StressmarkSpec
from repro.core.sync import offset_assignments, spread_offsets
from repro.errors import GenerationError
from repro.machine.tod import TOD_STEP


class TestSpec:
    def test_valid(self):
        spec = StressmarkSpec(stimulus_freq_hz=2e6, synchronize=True,
                              misalignment=125e-9, n_events=100)
        assert spec.duty == 0.5

    def test_misalignment_requires_sync(self):
        with pytest.raises(GenerationError, match="requires synchronization"):
            StressmarkSpec(stimulus_freq_hz=2e6, misalignment=62.5e-9)

    def test_misalignment_on_tod_grid(self):
        with pytest.raises(GenerationError, match="62.5"):
            StressmarkSpec(
                stimulus_freq_hz=2e6, synchronize=True, misalignment=40e-9
            )

    def test_guards(self):
        with pytest.raises(GenerationError):
            StressmarkSpec(stimulus_freq_hz=0.0)
        with pytest.raises(GenerationError):
            StressmarkSpec(stimulus_freq_hz=1e6, n_events=0)
        with pytest.raises(GenerationError):
            StressmarkSpec(stimulus_freq_hz=1e6, duty=1.0)


class TestBuilder:
    def test_phase_lengths_track_frequency(self, generator):
        builder = generator.max_builder
        slow = builder.phase_repetitions(StressmarkSpec(stimulus_freq_hz=1e5))
        fast = builder.phase_repetitions(StressmarkSpec(stimulus_freq_hz=1e7))
        assert slow[0] > fast[0]
        assert slow[1] > fast[1]

    def test_achieved_frequency_close_when_feasible(self, generator):
        mark = generator.max_didt(freq_hz=2.6e6)
        assert mark.achieved_freq_hz == pytest.approx(2.6e6, rel=0.05)

    def test_achieved_frequency_deviates_at_limit(self, generator):
        mark = generator.max_didt(freq_hz=1e8)
        # Integral repetition counts force a different real period.
        assert mark.achieved_freq_hz != pytest.approx(1e8, rel=0.001)
        assert mark.achieved_freq_hz <= generator.max_builder.max_feasible_frequency() * 1.05

    def test_delta_i_positive_and_realistic(self, max_stressmark):
        assert 10.0 < max_stressmark.delta_i < 40.0

    def test_current_program_compilation(self, max_stressmark):
        program = max_stressmark.current_program()
        assert program.sync is not None
        assert program.sync.events_per_sync == 1000
        assert program.i_high > program.i_low
        assert program.freq_hz == pytest.approx(
            max_stressmark.achieved_freq_hz
        )

    def test_unsync_compilation(self, generator):
        program = generator.max_didt(freq_hz=2.6e6, synchronize=False).current_program()
        assert program.sync is None

    def test_assembly_renders(self, max_stressmark):
        text = max_stressmark.assembly()
        assert "didt" in text
        for mnemonic in {i.mnemonic for i in max_stressmark.high_body}:
            assert mnemonic in text

    def test_materialization_cap(self, generator):
        mark = generator.max_didt(freq_hz=10.0, synchronize=True)
        # Program body is bounded even for second-scale periods...
        assert len(mark.program.loop_body) < 5000
        # ... while the repetition counts keep the true phase lengths.
        assert mark.high_repetitions > 10_000

    def test_high_must_outconsume_low(self, generator, target):
        with pytest.raises(GenerationError, match="out-consume"):
            StressmarkBuilder(
                target, generator.min_sequence, generator.max_sequence
            )

    def test_medium_level(self, generator):
        med = generator.medium_didt(freq_hz=2.6e6)
        maxi = generator.max_didt(freq_hz=2.6e6)
        assert med.delta_i == pytest.approx(maxi.delta_i / 2, rel=0.1)

    def test_unknown_level_rejected(self, generator):
        with pytest.raises(GenerationError):
            generator.build(StressmarkSpec(stimulus_freq_hz=1e6), level="tiny")


class TestSpreadOffsets:
    def test_zero_misalignment_all_aligned(self):
        assert spread_offsets(6, 0.0) == [0.0] * 6

    def test_paper_example_125ns(self):
        """'for a maximum allowed misalignment of 125ns, 2 stressmarks
        are synchronized at t=0, 2 at t=62.5ns and 2 at t=125ns'"""
        offsets = spread_offsets(6, 125e-9)
        assert sorted(offsets) == pytest.approx(
            [0.0, 0.0, 62.5e-9, 62.5e-9, 125e-9, 125e-9]
        )

    def test_one_step(self):
        offsets = spread_offsets(6, 62.5e-9)
        assert sorted(offsets) == pytest.approx(
            [0.0, 0.0, 0.0, 62.5e-9, 62.5e-9, 62.5e-9]
        )

    def test_grid_enforced(self):
        with pytest.raises(GenerationError):
            spread_offsets(6, 100e-9)

    def test_max_spread(self):
        offsets = spread_offsets(6, 5 * TOD_STEP)
        assert len(set(offsets)) == 6


class TestOffsetAssignments:
    def test_all_distinct_permutations(self):
        offsets = [0.0, 0.0, 0.0, TOD_STEP, TOD_STEP, TOD_STEP]
        assignments = list(offset_assignments(offsets))
        assert len(assignments) == 20  # 6!/(3!3!)
        assert len(set(assignments)) == 20

    def test_sampling_is_deterministic(self):
        offsets = [0.0, 0.0, TOD_STEP, TOD_STEP, 2 * TOD_STEP, 2 * TOD_STEP]
        a = list(offset_assignments(offsets, sample=5, seed=3))
        b = list(offset_assignments(offsets, sample=5, seed=3))
        assert a == b
        assert len(a) == 5

    def test_wrong_length_rejected(self):
        with pytest.raises(GenerationError):
            list(offset_assignments([0.0] * 4))
