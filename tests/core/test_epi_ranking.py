"""EPI profiling and Table I rendering tests."""

import pytest

from repro.core.epi import generate_epi_profile
from repro.core.ranking import render_epi_table
from repro.errors import GenerationError
from repro.isa.zmainframe import PINNED_BOTTOM, PINNED_TOP


class TestProfileStructure:
    def test_covers_full_isa(self, generator):
        assert len(generator.epi_profile) == 1301

    def test_ranks_are_contiguous(self, generator):
        ranks = [e.rank for e in generator.epi_profile.entries]
        assert ranks == list(range(1, 1302))

    def test_sorted_by_power(self, generator):
        powers = [e.power_w for e in generator.epi_profile.entries]
        assert powers == sorted(powers, reverse=True)

    def test_normalization_floor_is_one(self, generator):
        assert generator.epi_profile.last.normalized_power == pytest.approx(1.0)

    def test_lookup(self, generator):
        entry = generator.epi_profile["CIB"]
        assert entry.mnemonic == "CIB"
        with pytest.raises(GenerationError):
            generator.epi_profile["NOSUCH"]


class TestTableIReproduction:
    def test_top5_set_matches_paper(self, generator):
        measured = {e.mnemonic for e in generator.epi_profile.top(5)}
        assert measured == set(PINNED_TOP)

    def test_bottom5_set_matches_paper(self, generator):
        measured = {e.mnemonic for e in generator.epi_profile.bottom(5)}
        assert measured == set(PINNED_BOTTOM)

    def test_cib_normalized_power(self, generator):
        assert generator.epi_profile["CIB"].normalized_power == pytest.approx(
            1.58, abs=0.02
        )

    def test_nonintuitive_compare_in_top5(self, generator):
        """The paper highlights CHHSI — a compare immediate — landing in
        the top five."""
        top = [e.mnemonic for e in generator.epi_profile.top(5)]
        assert "CHHSI" in top


class TestSubsetProfiling:
    def test_subset_profile(self, target):
        subset = [target.isa["CIB"], target.isa["SRNM"], target.isa["ADTR"]]
        profile = generate_epi_profile(
            target, repetitions=20, instructions=subset
        )
        assert len(profile) == 3
        assert profile.top(1)[0].mnemonic == "CIB"

    def test_empty_subset_rejected(self, target):
        with pytest.raises(GenerationError):
            generate_epi_profile(target, instructions=[])


class TestRendering:
    def test_table_shape(self, generator):
        text = render_epi_table(generator.epi_profile, n=5)
        lines = text.splitlines()
        assert "Rank" in lines[0]
        assert "..." in text
        assert "CIB" in text
        assert "SRNM" in text or "STCK" in text

    def test_rendered_values_match_paper_precision(self, generator):
        text = render_epi_table(generator.epi_profile, n=5)
        assert "1.58" in text  # CIB row
