"""Max-power search pipeline tests (candidates, sequences, filters,
search, and the min/medium-power constructions)."""

import pytest

from repro.core.candidates import select_candidates
from repro.core.filters import (
    FilterConstraints,
    ipc_filter,
    microarch_filter,
)
from repro.core.mediumpower import medium_power_sequence, target_power_sequence
from repro.core.minpower import min_power_program, min_power_sequence
from repro.core.sequences import enumerate_sequences, sequence_space_size
from repro.errors import GenerationError
from repro.uarch.power import estimate_loop_power
from repro.uarch.throughput import analyze_loop


class TestCandidateSelection:
    def test_nine_candidates_by_default(self, generator):
        candidates = select_candidates(generator.epi_profile)
        assert len(candidates) == 9

    def test_one_per_issue_class(self, generator):
        candidates = select_candidates(generator.epi_profile)
        classes = [c.issue_class for c in candidates]
        assert len(classes) == len(set(classes))

    def test_low_power_classes_discarded(self, generator):
        candidates = select_candidates(generator.epi_profile)
        units = {c.unit for c in candidates}
        assert "DFU" not in units  # decimal FP is low power
        assert "SYS" not in units  # serializing control is low IPC

    def test_top_instruction_is_cib(self, generator):
        candidates = select_candidates(generator.epi_profile)
        assert candidates[0].mnemonic == "CIB"

    def test_threshold_guards(self, generator):
        with pytest.raises(GenerationError):
            select_candidates(generator.epi_profile, max_candidates=1)
        with pytest.raises(GenerationError):
            select_candidates(generator.epi_profile, min_power_ratio=99.0)


class TestSequenceEnumeration:
    def test_space_size(self):
        assert sequence_space_size(9, 6) == 531441
        assert sequence_space_size(3, 2) == 9

    def test_enumeration_is_exhaustive(self, generator):
        candidates = select_candidates(generator.epi_profile)[:3]
        sequences = list(enumerate_sequences(candidates, length=2))
        assert len(sequences) == 9
        assert len(set(tuple(i.mnemonic for i in s) for s in sequences)) == 9

    def test_empty_pool_rejected(self):
        with pytest.raises(GenerationError):
            list(enumerate_sequences([], length=2))


class TestMicroarchFilter:
    def test_requires_full_group_size(self, generator, core_config):
        candidates = select_candidates(generator.epi_profile)
        branch = next(c for c in candidates if c.is_branch)
        alu1, alu2 = [
            c for c in candidates if not c.is_branch and not c.memory
        ][:2]
        # A branch in slot 0 breaks the first group to size 1.
        bad = (branch, alu1, alu2, alu1, alu2, branch)
        good = (alu1, alu2, branch, alu1, alu2, branch)
        survivors, _ = microarch_filter([bad, good], core_config)
        assert survivors == [good]

    def test_class_multiplicity_limit(self, generator, core_config):
        candidates = select_candidates(generator.epi_profile)
        alu = next(c for c in candidates if not c.is_branch and not c.memory)
        too_many = (alu,) * 6
        survivors, stats = microarch_filter([too_many], core_config)
        assert survivors == []
        assert stats.rejected == 1

    def test_funnel_statistics(self, generator, core_config):
        candidates = select_candidates(generator.epi_profile)[:4]
        sequences = list(enumerate_sequences(candidates, length=3))
        survivors, stats = microarch_filter(sequences, core_config)
        assert stats.examined == len(sequences)
        assert stats.accepted == len(survivors)
        assert stats.rejected == stats.examined - stats.accepted


class TestIpcFilter:
    def test_keeps_top_n_by_ipc(self, generator, core_config):
        candidates = select_candidates(generator.epi_profile)
        sequences = list(enumerate_sequences(candidates[:3], length=3))
        kept, stats = ipc_filter(sequences, core_config, keep=10)
        assert len(kept) == 10
        worst_kept = min(analyze_loop(s, core_config).ipc for s in kept)
        dropped = [s for s in sequences if s not in kept]
        best_dropped = max(analyze_loop(s, core_config).ipc for s in dropped)
        assert worst_kept >= best_dropped - 1e-9

    def test_keep_zero_rejected(self, generator, core_config):
        with pytest.raises(GenerationError):
            ipc_filter([], core_config, keep=0)


class TestFullSearch:
    def test_funnel_shape(self, generator):
        result = generator.max_power_result
        assert result.enumerated == 531441
        assert 0 < result.microarch_stats.accepted < result.enumerated
        assert result.evaluated <= 150  # the session generator's ipc_keep

    def test_winner_beats_single_instruction_loops(self, generator, target):
        result = generator.max_power_result
        ceiling = target.core.floor_power_w * max(
            i.power_weight for i in target.isa
        )
        assert result.power_w > ceiling

    def test_winner_has_full_dispatch_rate(self, generator, target):
        profile = analyze_loop(list(generator.max_power_result.sequence), target.core)
        assert profile.ipc == pytest.approx(3.0, abs=0.01)

    def test_validation_readings_close(self, generator):
        result = generator.max_power_result
        assert len(result.validation_powers) == 2
        for reading in result.validation_powers:
            assert reading == pytest.approx(result.power_w, rel=0.03)


class TestMinAndMediumPower:
    def test_min_sequence_is_ranking_tail(self, generator):
        seq = min_power_sequence(generator.epi_profile)
        assert len(seq) == 1
        assert seq[0].mnemonic == generator.epi_profile.last.mnemonic

    def test_min_program_builds(self, generator, target):
        program = min_power_program(generator.epi_profile, target)
        assert len(program.loop_body) == 1

    def test_medium_hits_midpoint(self, generator, target):
        dilution = generator.medium_dilution
        max_w = generator.max_builder._high_estimate.watts
        min_w = generator.max_builder._low_estimate.watts
        midpoint = 0.5 * (max_w + min_w)
        assert dilution.power_w == pytest.approx(midpoint, rel=0.03)

    def test_target_power_search_tracks_targets(self, generator, target):
        max_seq = generator.max_sequence
        min_seq = generator.min_sequence
        lo = target_power_sequence(
            target, max_seq, min_seq, target_power_w=18.0,
            max_high_copies=8, max_low_copies=6,
        )
        hi = target_power_sequence(
            target, max_seq, min_seq, target_power_w=30.0,
            max_high_copies=8, max_low_copies=6,
        )
        assert lo.power_w < hi.power_w

    def test_medium_rejects_inverted_bounds(self, generator, target):
        with pytest.raises(GenerationError):
            medium_power_sequence(
                target, generator.max_sequence, generator.min_sequence,
                max_power_w=10.0, min_power_w=20.0,
            )
