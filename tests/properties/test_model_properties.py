"""Property-based tests on grouping, throughput, skitter and edge
trains."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.instruction import InstructionDef
from repro.measure.skitter import SkitterConfig, SkitterMacro
from repro.pdn.superposition import edges_from_square_wave
from repro.uarch.grouping import form_groups
from repro.uarch.resources import default_core_config
from repro.uarch.throughput import analyze_loop

CFG = default_core_config()


@st.composite
def instructions(draw):
    unit = draw(st.sampled_from(["FXU", "LSU", "BRU", "BFU", "VXU"]))
    ends_group = draw(st.booleans()) if unit == "BRU" else False
    group_alone = draw(st.booleans()) if unit in ("LSU", "BFU") else False
    return InstructionDef(
        mnemonic=f"I{draw(st.integers(0, 10_000))}",
        description="prop",
        family="fixed-point",
        unit=unit,
        issue_class=f"{unit}.x",
        uops=draw(st.integers(1, 3)),
        latency=draw(st.integers(1, 8)),
        pipelined=draw(st.booleans()),
        ends_group=ends_group,
        group_alone=group_alone,
        memory=(unit == "LSU"),
    )


bodies = st.lists(instructions(), min_size=1, max_size=12)


@settings(max_examples=60, deadline=None)
@given(body=bodies)
def test_groups_partition_the_body(body):
    groups = form_groups(body, CFG)
    flattened = [inst for group in groups for inst in group]
    assert flattened == list(body)


@settings(max_examples=60, deadline=None)
@given(body=bodies)
def test_group_invariants(body):
    for group in form_groups(body, CFG):
        assert 1 <= len(group) <= CFG.dispatch_width
        assert sum(i.memory for i in group) <= CFG.max_memory_per_group
        if any(i.group_alone for i in group):
            assert len(group) == 1
        # A branch may only terminate the group.
        for inst in group[:-1]:
            assert not inst.ends_group


@settings(max_examples=60, deadline=None)
@given(body=bodies)
def test_ipc_bounded_by_dispatch_width(body):
    profile = analyze_loop(body, CFG)
    # Dispatch groups hold up to `dispatch_width` *instructions*; each
    # may crack into several µops, so the µop-IPC bound scales with the
    # body's fattest instruction.
    max_uops = max(inst.uops for inst in body)
    assert 0 < profile.ipc <= CFG.dispatch_width * max_uops + 1e-9
    assert profile.cycles >= profile.groups


@settings(max_examples=60, deadline=None)
@given(body=bodies, extra=instructions())
def test_adding_work_never_reduces_cycles(body, extra):
    base = analyze_loop(body, CFG).cycles
    more = analyze_loop(list(body) + [extra], CFG).cycles
    assert more >= base - 1e-9


@settings(max_examples=60, deadline=None)
@given(
    v_min=st.floats(min_value=0.80, max_value=1.05),
    deeper=st.floats(min_value=0.001, max_value=0.1),
)
def test_skitter_monotone_in_droop(v_min, deeper):
    macro = SkitterMacro(SkitterConfig(), "p")
    macro.observe(v_min, 1.06)
    shallow = macro.read().p2p_pct
    macro.reset()
    macro.observe(v_min - deeper, 1.06)
    deep = macro.read().p2p_pct
    assert deep >= shallow


@settings(max_examples=60, deadline=None)
@given(
    delta=st.floats(min_value=0.1, max_value=50.0),
    freq=st.floats(min_value=1e3, max_value=5e7),
    events=st.integers(min_value=1, max_value=40),
    duty=st.floats(min_value=0.1, max_value=0.9),
)
def test_edge_trains_are_charge_neutral(delta, freq, events, duty):
    train = edges_from_square_wave("p", delta, freq, events, duty=duty)
    # Rising and falling edges cancel: the burst ends at the baseline.
    assert train.deltas.sum() == pytest.approx(0.0, abs=1e-9)
    assert train.n_edges == 2 * events
    assert np.all(np.diff(train.times) > -1e-15)


@settings(max_examples=60, deadline=None)
@given(
    freq=st.floats(min_value=1e3, max_value=1e9),
    rise=st.floats(min_value=1e-10, max_value=1e-7),
)
def test_edge_derating_never_exceeds_request(freq, rise):
    train = edges_from_square_wave("p", 10.0, freq, 1, rise_time=rise)
    assert abs(train.deltas[0]) <= 10.0 + 1e-12
