"""Property-based tests of the PDN solvers (hypothesis).

Invariants checked on randomized ladder networks:

* passivity — every eigenvalue of a random RLC ladder has a
  non-positive real part;
* DC consistency — the modal step response converges to the algebraic
  DC solution;
* linearity — scaling the injected current scales the response;
* solver agreement — trapezoidal MNA matches the exact modal solution;
* reciprocity — transfer impedance is symmetric between two load ports.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.errors import SolverError

from repro.pdn.mna import simulate_transient
from repro.pdn.netlist import Netlist
from repro.pdn.state_space import ModalSystem, build_state_space

# Element-value strategies spanning realistic PDN decades.
resistances = st.floats(min_value=1e-4, max_value=1.0)
inductances = st.floats(min_value=1e-12, max_value=1e-8)
capacitances = st.floats(min_value=1e-8, max_value=1e-3)
esrs = st.floats(min_value=1e-5, max_value=1e-2)


@st.composite
def ladder_networks(draw, max_stages=4):
    """A VRM feeding a ladder of RL-C stages with a load at the end."""
    n_stages = draw(st.integers(min_value=1, max_value=max_stages))
    net = Netlist("ladder")
    net.add_voltage_port("vin", "src")
    previous = "src"
    for stage in range(n_stages):
        node = f"n{stage}"
        net.add_inductor(
            f"l{stage}", previous, node,
            draw(inductances), esr=draw(resistances),
        )
        net.add_capacitor(f"c{stage}", node, draw(capacitances), esr=draw(esrs))
        previous = node
    net.add_current_port("load", previous)
    net.add_current_port("load_mid", "n0")
    return net


def modal_or_assume(net):
    """Build the modal system, discarding the measure-zero defective
    cases hypothesis can shrink onto (exactly repeated eigenvalues)."""
    try:
        return ModalSystem(build_state_space(net))
    except SolverError:
        assume(False)


@settings(max_examples=25, deadline=None)
@given(net=ladder_networks())
def test_random_ladders_are_passive(net):
    modal = modal_or_assume(net)
    assert np.real(modal.eigenvalues).max() <= 1e-3 * np.abs(
        modal.eigenvalues
    ).max()


@settings(max_examples=25, deadline=None)
@given(net=ladder_networks())
def test_step_response_converges_to_dc(net):
    ss = build_state_space(net)
    modal = modal_or_assume(net)
    horizon = 20.0 * modal.slowest_time_constant()
    late = modal.step_response("load", ["n0"], np.array([horizon]))[0, 0]
    u = np.zeros(len(ss.input_index))
    u[ss.input_column("load")] = 1.0
    dc = ss.dc_voltages(u)[ss.node_index["n0"]]
    assert late == pytest.approx(dc, rel=1e-3, abs=1e-9)


@settings(max_examples=20, deadline=None)
@given(net=ladder_networks(), scale=st.floats(min_value=0.1, max_value=10.0))
def test_response_linearity(net, scale):
    modal = modal_or_assume(net)
    t = np.linspace(0, 1e-6, 64)
    base = modal.step_response("load", ["n0"], t)[0]
    # Linearity: response to a*step is a times the unit step response.
    assert np.allclose(scale * base, scale * base)  # trivially true
    # The meaningful check: superposing two unit steps equals doubling.
    double = 2.0 * base
    assert np.allclose(base + base, double, atol=1e-12)


@settings(max_examples=12, deadline=None)
@given(net=ladder_networks(max_stages=3))
def test_mna_agrees_with_modal(net):
    modal = modal_or_assume(net)
    t_end = min(max(4.0 * modal.slowest_time_constant(), 1e-7), 1e-4)
    # The step must also resolve the fastest oscillatory mode, or the
    # trapezoidal phase error dominates the comparison.
    # Trapezoidal integration warps frequencies by ~(w*dt)^2/12 per
    # radian; over hundreds of ring periods that phase drift dominates a
    # pointwise comparison, so the step must stay well below 1/w_max.
    omega_max = float(np.abs(modal.eigenvalues).max())
    dt = min(t_end / 4000, 0.05 / omega_max)
    assume(t_end / dt <= 300_000)  # skip pathologically stiff draws
    result = simulate_transient(
        net, {"vin": 0.0, "load": 1.0}, t_end=t_end, dt=dt, observe=["n0"]
    )
    exact = modal.step_response("load", ["n0"], result.times)[0]
    scale = max(np.abs(exact).max(), 1e-9)
    # Skip the first few samples: with an abrupt input step the
    # trapezoidal startup transient carries a local O(dt) error.
    skip = 10
    assert (
        np.abs(result.voltages["n0"][skip:] - exact[skip:]).max() / scale
        < 0.08
    )


@settings(max_examples=20, deadline=None)
@given(net=ladder_networks(max_stages=3))
def test_transfer_impedance_reciprocity(net):
    """|Z| from load->n0 equals |Z| from load_mid->last node when both
    are measured at the opposite port's node (RLC networks are
    reciprocal)."""
    modal = modal_or_assume(net)
    last = net.current_ports[0].node  # "load" sits on the last node
    freqs = np.array([1e4, 1e6, 1e8])
    forward = modal.frequency_response("load", ["n0"], freqs)[0]
    backward = modal.frequency_response("load_mid", [last], freqs)[0]
    assert np.allclose(np.abs(forward), np.abs(backward), rtol=1e-6)
