"""Fault harness tests: injection behavior on real executors, cache
corruption, and recovery through the resilience layer."""

import pytest

from repro.engine.cache import ResultCache
from repro.engine.executor import ProcessExecutor, SerialExecutor
from repro.engine.resilience import RetryPolicy
from repro.faults import (
    FaultPlan,
    FaultyExecutor,
    InjectedCrash,
    corrupt_cache_entries,
    reset_fault_memo,
)
from repro.faults.harness import fault_key
from repro.obs import Telemetry, get_telemetry


@pytest.fixture(autouse=True)
def _fresh_memo():
    """Transient faults fire once per (seed, key) per process; forget
    past tests' firings so every test starts from a clean schedule."""
    reset_fault_memo()
    yield
    reset_fault_memo()


def identity(x):
    return x


class _CountingFn:
    """Records how many times it was invoked (per process)."""

    def __init__(self):
        self.calls = 0

    def __call__(self, x):
        self.calls += 1
        return x


FAST_RETRY = RetryPolicy(max_retries=2, backoff_base_s=0.0)


class TestFaultKey:
    def test_tuple_with_fingerprint_head_uses_it(self):
        assert fault_key(("deadbeef", [1, 2], "tag")) == "deadbeef"

    def test_other_items_get_canonical_keys(self):
        assert fault_key(3) == fault_key(3)
        assert fault_key(3) != fault_key(4)


class TestSerialInjection:
    def test_transient_exception_is_absorbed_by_retry(self):
        executor = FaultyExecutor(
            SerialExecutor(), FaultPlan(seed=1, exception_rate=1.0)
        )
        outcomes = executor.map_guarded(identity, [10, 20, 30], FAST_RETRY)
        assert [o.value for o in outcomes] == [10, 20, 30]
        assert all(o.attempts == 2 for o in outcomes)

    def test_permanent_exception_surfaces_as_failure(self):
        executor = FaultyExecutor(
            SerialExecutor(),
            FaultPlan(seed=1, exception_rate=1.0, transient=False),
        )
        outcomes = executor.map_guarded(identity, [10, 20], FAST_RETRY)
        assert all(not o.ok for o in outcomes)
        assert all(o.failure.error_type == "InjectedFault" for o in outcomes)
        assert all(o.attempts == FAST_RETRY.max_retries + 1 for o in outcomes)

    def test_crash_in_main_process_raises_not_exits(self):
        # A crash fault must never genuinely kill the main process.
        executor = FaultyExecutor(
            SerialExecutor(), FaultPlan(seed=1, crash_rate=1.0, transient=False)
        )
        with pytest.raises(InjectedCrash):
            executor.map(identity, [1])

    def test_hang_is_caught_by_watchdog_then_retried(self):
        executor = FaultyExecutor(
            SerialExecutor(),
            FaultPlan(seed=1, hang_rate=1.0, hang_seconds=0.5),
        )
        retry = RetryPolicy(
            max_retries=1, backoff_base_s=0.0, run_timeout_s=0.05
        )
        outcomes = executor.map_guarded(identity, [7], retry)
        assert outcomes[0].ok
        assert outcomes[0].value == 7
        assert outcomes[0].timeouts == 1
        assert outcomes[0].attempts == 2

    def test_abort_after_simulates_host_interruption(self):
        counting = _CountingFn()
        executor = FaultyExecutor(
            SerialExecutor(), FaultPlan(seed=1, abort_after=2)
        )
        with pytest.raises(KeyboardInterrupt):
            executor.map(counting, [1, 2, 3, 4])
        assert counting.calls == 2  # the interrupt landed on call #2

    def test_inactive_plan_is_transparent(self):
        executor = FaultyExecutor(SerialExecutor(), FaultPlan(seed=1))
        assert executor.map(identity, [1, 2]) == [1, 2]
        assert executor.name == "faulty+serial"
        assert executor.jobs == 1


class TestProcessInjection:
    def test_worker_crashes_degrade_and_recover(self):
        # Every run crashes its worker once: the pool breaks for real
        # (os._exit in the child), the parent re-runs chunks serially,
        # the in-parent crash becomes InjectedCrash, and the retry
        # absorbs it -- the batch still completes with correct values.
        executor = FaultyExecutor(
            ProcessExecutor(jobs=2), FaultPlan(seed=2, crash_rate=1.0)
        )
        telemetry = get_telemetry()
        degraded_before = telemetry.counter("engine.pool.degraded_to_serial")
        outcomes = executor.map_guarded(identity, list(range(6)), FAST_RETRY)
        assert [o.value for o in outcomes] == list(range(6))
        assert (
            telemetry.counter("engine.pool.degraded_to_serial")
            > degraded_before
        )


class TestCacheCorruption:
    def test_victims_are_deterministic_and_torn(self, tmp_path):
        telemetry = Telemetry()
        cache = ResultCache(cache_dir=tmp_path, telemetry=telemetry)
        keys = ["aaaa", "bbbb", "cccc", "dddd"]
        for key in keys:
            cache.put(key, {"key": key})
        plan = FaultPlan(seed=6, corrupt_entries=2)

        victims = corrupt_cache_entries(tmp_path, plan)
        assert len(victims) == 2
        assert victims == corrupt_cache_entries(tmp_path, plan)  # stable

        fresh = ResultCache(cache_dir=tmp_path, telemetry=telemetry)
        torn = {path.stem for path in victims}
        for key in keys:
            if key in torn:
                assert fresh.get(key) is None  # quarantined -> miss
            else:
                assert fresh.get(key) == {"key": key}
        assert telemetry.counter("engine.cache.quarantined") == 2

    def test_count_defaults_to_plan_and_quarantine_is_excluded(self, tmp_path):
        telemetry = Telemetry()
        cache = ResultCache(cache_dir=tmp_path, telemetry=telemetry)
        cache.put("aaaa", 1)
        plan = FaultPlan(seed=6, corrupt_entries=1)
        corrupt_cache_entries(tmp_path, plan)
        assert ResultCache(
            cache_dir=tmp_path, telemetry=telemetry
        ).get("aaaa") is None
        # The torn entry now sits in quarantine/; corrupting again must
        # not pick it as a victim (there is nothing else to tear).
        assert corrupt_cache_entries(tmp_path, plan) == []


class TestTransientMemo:
    def test_each_key_fires_once_per_process(self):
        plan = FaultPlan(seed=1, exception_rate=1.0)
        executor = FaultyExecutor(SerialExecutor(), plan)
        first = executor.map_guarded(identity, [5], FAST_RETRY)
        assert first[0].attempts == 2  # fired, then absorbed
        second = executor.map_guarded(identity, [5], FAST_RETRY)
        assert second[0].attempts == 1  # memo: already delivered

    def test_reset_restores_the_schedule(self):
        plan = FaultPlan(seed=1, exception_rate=1.0)
        executor = FaultyExecutor(SerialExecutor(), plan)
        executor.map_guarded(identity, [5], FAST_RETRY)
        reset_fault_memo()
        again = executor.map_guarded(identity, [5], FAST_RETRY)
        assert again[0].attempts == 2
