"""FaultPlan tests: validation, deterministic decisions, spec parsing."""

import pytest

from repro.errors import ConfigError
from repro.faults import HOST_KINDS, FaultPlan


class TestValidation:
    @pytest.mark.parametrize("field", ["crash_rate", "hang_rate", "exception_rate"])
    def test_rates_bounded(self, field):
        with pytest.raises(ConfigError):
            FaultPlan(**{field: -0.1})
        with pytest.raises(ConfigError):
            FaultPlan(**{field: 1.5})

    def test_rates_must_sum_below_one(self):
        with pytest.raises(ConfigError, match="sum"):
            FaultPlan(crash_rate=0.6, exception_rate=0.6)

    def test_counts_and_durations_guarded(self):
        with pytest.raises(ConfigError):
            FaultPlan(corrupt_entries=-1)
        with pytest.raises(ConfigError):
            FaultPlan(hang_seconds=0.0)
        with pytest.raises(ConfigError):
            FaultPlan(abort_after=0)

    def test_active_flag(self):
        assert not FaultPlan().active
        assert FaultPlan(crash_rate=0.1).active
        assert FaultPlan(corrupt_entries=1).active
        assert FaultPlan(abort_after=3).active


class TestDecisions:
    def test_decide_is_deterministic(self):
        plan = FaultPlan(seed=7, crash_rate=0.2, exception_rate=0.3)
        keys = [f"run-{i}" for i in range(50)]
        assert [plan.decide(k) for k in keys] == [plan.decide(k) for k in keys]

    def test_seed_decorrelates_plans(self):
        keys = [f"run-{i}" for i in range(200)]
        a = FaultPlan(seed=1, crash_rate=0.5)
        b = FaultPlan(seed=2, crash_rate=0.5)
        assert [a.decide(k) for k in keys] != [b.decide(k) for k in keys]

    def test_full_rate_always_fires(self):
        crash = FaultPlan(crash_rate=1.0)
        hang = FaultPlan(hang_rate=1.0)
        for key in ("a", "b", "c"):
            assert crash.decide(key) == "crash"
            assert hang.decide(key) == "hang"

    def test_zero_rate_never_fires(self):
        plan = FaultPlan(seed=11)
        assert all(plan.decide(f"k{i}") is None for i in range(100))

    def test_rates_are_respected_statistically(self):
        plan = FaultPlan(seed=3, crash_rate=0.3)
        keys = [f"run-{i}" for i in range(2000)]
        crashes = sum(plan.decide(k) == "crash" for k in keys)
        assert 0.25 < crashes / len(keys) < 0.35

    def test_draw_is_uniform_unit_interval(self):
        plan = FaultPlan(seed=5)
        draws = [plan.draw(f"k{i}") for i in range(500)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert 0.4 < sum(draws) / len(draws) < 0.6


class TestSpecParsing:
    def test_full_spec(self):
        plan = FaultPlan.from_spec(
            "crash=0.2, exception=0.1, hang=0.05, hang_seconds=0.2, "
            "seed=7, corrupt=2, permanent"
        )
        assert plan.crash_rate == 0.2
        assert plan.exception_rate == 0.1
        assert plan.hang_rate == 0.05
        assert plan.hang_seconds == 0.2
        assert plan.seed == 7
        assert plan.corrupt_entries == 2
        assert not plan.transient

    def test_abort_after(self):
        assert FaultPlan.from_spec("abort_after=3").abort_after == 3

    @pytest.mark.parametrize("bad", ["bogus=1", "crash", "crash=lots", "=0.2"])
    def test_bad_entries_rejected(self, bad):
        with pytest.raises(ConfigError):
            FaultPlan.from_spec(bad)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("REPRO_FAULTS", "   ")
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("REPRO_FAULTS", "crash=0.25,seed=9")
        plan = FaultPlan.from_env()
        assert plan.crash_rate == 0.25
        assert plan.seed == 9

    def test_describe_names_what_fires(self):
        text = FaultPlan(
            seed=4, crash_rate=0.2, corrupt_entries=1, transient=False
        ).describe()
        assert "crash=0.2" in text
        assert "corrupt=1" in text
        assert "permanent" in text


class TestHostKinds:
    @pytest.mark.parametrize("field", [f"{kind}_rate" for kind in HOST_KINDS])
    def test_host_rates_bounded(self, field):
        with pytest.raises(ConfigError):
            FaultPlan(**{field: -0.1})
        with pytest.raises(ConfigError):
            FaultPlan(**{field: 1.5})

    def test_host_active_flag(self):
        assert not FaultPlan(crash_rate=0.5).host_active
        assert FaultPlan(worker_kill_rate=0.1).host_active
        assert FaultPlan(lease_corrupt_rate=0.1).host_active
        assert FaultPlan(heartbeat_stall_rate=0.1).host_active
        # Host kinds make the plan active overall too.
        assert FaultPlan(worker_kill_rate=0.1).active

    def test_host_kinds_do_not_sum_with_run_kinds(self):
        """Host rates draw independently — a full host rate next to
        full run rates is legal (run rates alone must sum <= 1)."""
        FaultPlan(crash_rate=1.0, worker_kill_rate=1.0,
                  lease_corrupt_rate=1.0)

    def test_decide_host_deterministic_and_rate_extremes(self):
        plan = FaultPlan(seed=7, worker_kill_rate=0.3)
        keys = [f"w0|run:{i}" for i in range(50)]
        first = [plan.decide_host("worker_kill", k) for k in keys]
        assert first == [plan.decide_host("worker_kill", k) for k in keys]
        always = FaultPlan(worker_kill_rate=1.0)
        never = FaultPlan(seed=7)
        assert all(always.decide_host("worker_kill", k) for k in keys)
        assert not any(never.decide_host("worker_kill", k) for k in keys)

    def test_kinds_draw_independently(self):
        """Each host kind salts its own draw: the set of keys that kill
        and the set that corrupt differ at equal rates (unlike run
        kinds, which partition one draw and never overlap)."""
        plan = FaultPlan(
            seed=3, worker_kill_rate=0.5, lease_corrupt_rate=0.5
        )
        keys = [f"w0|run:{i}" for i in range(200)]
        kills = {k for k in keys if plan.decide_host("worker_kill", k)}
        corrupts = {k for k in keys if plan.decide_host("lease_corrupt", k)}
        assert kills != corrupts
        assert kills & corrupts  # independence implies some overlap

    def test_unknown_kind_refused(self):
        with pytest.raises(ConfigError):
            FaultPlan().decide_host("meteor_strike", "k")

    def test_spec_aliases_and_describe(self):
        plan = FaultPlan.from_spec("kill=0.2,lease_corrupt=0.1,stall=0.05")
        assert plan.worker_kill_rate == 0.2
        assert plan.lease_corrupt_rate == 0.1
        assert plan.heartbeat_stall_rate == 0.05
        text = plan.describe()
        assert "kill=0.2" in text
        assert "lease_corrupt=0.1" in text
        assert "stall=0.05" in text
