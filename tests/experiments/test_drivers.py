"""Experiment driver tests against the paper's qualitative claims.

All drivers run on the shared quick context (reduced segments and sweep
density); the assertions target the *shapes* the paper reports, with
tolerances matching the coarser settings.
"""

import pytest

from repro.experiments.common import quick_context
from repro.experiments.registry import get_experiment


@pytest.fixture(scope="module")
def ctx():
    return quick_context()


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return get_experiment("table1")(ctx)

    def test_sets_match_paper(self, result):
        assert result.data["top5_set_match"]
        assert result.data["bottom5_set_match"]

    def test_counts(self, result):
        assert result.data["total_instructions"] == 1301

    def test_text_has_both_ends(self, result):
        assert "CIB" in result.text
        assert "SRNM" in result.text


class TestFig7:
    @pytest.fixture(scope="class")
    def fig7a(self, ctx):
        return get_experiment("fig7a")(ctx)

    @pytest.fixture(scope="class")
    def fig7b(self, ctx):
        return get_experiment("fig7b")(ctx)

    def test_peak_in_mhz_band(self, fig7a):
        assert 8e5 < fig7a.data["peak_freq_hz"] < 6e6

    def test_peak_magnitude_near_paper(self, fig7a):
        # Paper: ~41 %p2p maximum for the unsynchronized sweep.
        assert 30.0 <= fig7a.data["peak_p2p"] <= 52.0

    def test_impedance_two_bands(self, fig7b):
        freqs = [f for f, _ in fig7b.data["resonances"]]
        assert any(1e6 < f < 5e6 for f in freqs)
        assert any(2e4 < f < 8e4 for f in freqs)

    def test_no_peak_above_5mhz(self, fig7b):
        assert fig7b.data["no_peak_above_5mhz"]


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return get_experiment("fig8")(ctx)

    def test_waveform_periodic_at_stimulus(self, result):
        assert result.data["period_match"]

    def test_large_peak_to_peak(self, result):
        assert result.data["p2p_volts"] > 0.05


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return get_experiment("fig9")(ctx)

    def test_sync_peak_near_paper(self, result):
        # Paper: ~61 %p2p at the resonant band with synchronization.
        assert 52.0 <= result.data["peak_sync_p2p"] <= 72.0

    def test_uplift_positive(self, result):
        assert result.data["mean_uplift"] > 5.0

    def test_nonresonant_sync_beats_resonant_unsync(self, result):
        assert result.data["nonresonant_sync_beats_resonant_unsync"]


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return get_experiment("fig10")(ctx)

    def test_misalignment_reduces_noise(self, result):
        assert result.data["one_step_max"] <= result.data["aligned_max"]
        assert result.data["tail_max"] < result.data["aligned_max"]

    def test_one_step_removes_real_share(self, result):
        assert result.data["one_step_drop"] >= 3.0


class TestFig11:
    @pytest.fixture(scope="class")
    def fig11a(self, ctx):
        return get_experiment("fig11a")(ctx)

    @pytest.fixture(scope="class")
    def fig11b(self, ctx):
        return get_experiment("fig11b")(ctx)

    def test_noise_rises_with_delta_i(self, fig11a):
        assert fig11a.data["noise_rises_with_delta_i"]

    def test_paper_30pct_rule(self, fig11a):
        """'if we want to keep %p2p noise below 30%, we should not allow
        more than 60% ΔI' — at 50-70% ΔI the reading is ~30 %p2p."""
        assert fig11a.data["noise_at_60pct"] == pytest.approx(33.0, abs=12.0)

    def test_distribution_effect_is_weak(self, fig11b):
        effect = fig11b.data["distribution_effect"]
        assert effect is not None
        # The paper: "the trend is not significant".
        assert abs(effect) < 10.0


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return get_experiment("fig12")(ctx)

    def test_sync_band_is_tight_and_low(self, result):
        low, high = result.data["sync_band"]
        assert high <= 0.05
        assert high - low <= 0.03

    def test_unsync_more_than_doubles_margin(self, result):
        assert result.data["unsync_more_than_doubles"]

    def test_extreme_frequencies_have_extra_margin(self, result):
        _, sync_high = result.data["sync_band"]
        assert result.data["margin_1hz"] > sync_high
        assert result.data["margin_100mhz"] > sync_high

    def test_customer_line_has_headroom(self, result):
        low, _ = result.data["sync_band"]
        assert result.data["customer_margin"] > low


class TestFig13:
    @pytest.fixture(scope="class")
    def fig13a(self, ctx):
        return get_experiment("fig13a")(ctx)

    @pytest.fixture(scope="class")
    def fig13b(self, ctx):
        return get_experiment("fig13b")(ctx)

    def test_correlations_high(self, fig13a):
        assert fig13a.data["min_correlation"] > 0.8

    def test_row_clusters(self, fig13a):
        assert fig13a.data["row_clusters_detected"]

    def test_propagation_asymmetry(self, fig13b):
        assert fig13b.data["same_row_stronger"]
        assert fig13b.data["same_row_faster"]


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return get_experiment("fig14")(ctx)

    def test_same_cluster_noisier(self, result):
        assert result.data["same_cluster_is_noisier"]

    def test_penalty_of_a_few_points(self, result):
        # Paper: 24.6 vs 28.2 %p2p — a few points.
        assert 0.0 < result.data["penalty"] <= 15.0


class TestFig15:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return get_experiment("fig15")(ctx)

    def test_extremes_have_no_freedom(self, result):
        assert result.data["extremes_have_no_freedom"]

    def test_mid_counts_have_opportunity(self, result):
        assert result.data["mid_count_reduction"] > 0.0
