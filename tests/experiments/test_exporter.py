"""Exporter tests: durable experiment artifacts."""

import json

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.exporter import (
    export_result,
    export_results,
    export_telemetry,
    jsonable,
)
from repro.experiments.registry import ExperimentResult
from repro.obs import Telemetry


def result(eid="figX", data=None):
    return ExperimentResult(
        experiment_id=eid,
        title="a title",
        text="row1\nrow2",
        data=data or {"value": 1.5},
    )


class TestJsonable:
    def test_numpy_scalars_and_arrays(self):
        out = jsonable({"a": np.float64(1.5), "b": np.array([1, 2])})
        assert out == {"a": 1.5, "b": [1, 2]}
        json.dumps(out)

    def test_tuples_become_lists(self):
        assert jsonable((1, 2)) == [1, 2]

    def test_nested_structures(self):
        payload = {"rows": [(np.int64(3), {"x": np.bool_(True)})]}
        out = jsonable(payload)
        assert out == {"rows": [[3, {"x": True}]]}

    def test_unknown_objects_fall_back_to_repr(self):
        class Odd:
            def __repr__(self):
                return "<odd>"

        assert jsonable(Odd()) == "<odd>"

    def test_dict_keys_stringified(self):
        assert jsonable({(1, 2): "v"}) == {"(1, 2)": "v"}


class TestExport:
    def test_writes_text_and_json(self, tmp_path):
        path = export_result(result(), tmp_path)
        assert path.name == "figX.json"
        assert (tmp_path / "figX.txt").read_text().startswith("== figX")
        payload = json.loads(path.read_text())
        assert payload["data"]["value"] == 1.5
        assert payload["title"] == "a title"

    def test_batch_export_with_index(self, tmp_path):
        results = [result("a1"), result("b2")]
        index_path = export_results(results, tmp_path)
        index = json.loads(index_path.read_text())
        assert set(index) == {"a1", "b2"}
        assert (tmp_path / "a1.json").exists()
        assert (tmp_path / "b2.txt").exists()

    def test_empty_batch_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            export_results([], tmp_path)

    def test_cli_output_flag(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["--quick", "run", "fig7b", "--output", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "fig7b.json").exists()
        assert (tmp_path / "index.json").exists()
        assert (tmp_path / "telemetry.json").exists()
        assert "exported" in capsys.readouterr().out


class TestTelemetryExport:
    def test_standalone_snapshot(self, tmp_path):
        telemetry = Telemetry()
        telemetry.increment("engine.runs", 3)
        telemetry.increment("engine.retries", 2)
        path = export_telemetry(tmp_path, telemetry)
        payload = json.loads(path.read_text())
        assert payload["counters"]["engine.runs"] == 3
        assert payload["resilience"] == {"engine.retries": 2}

    def test_batch_export_includes_telemetry(self, tmp_path):
        export_results([result("a1")], tmp_path, Telemetry())
        assert (tmp_path / "telemetry.json").exists()
