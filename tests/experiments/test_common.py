"""Experiment context tests: factory and caching semantics."""

import pytest

from repro.experiments.common import (
    RESONANT_FREQ_HZ,
    default_context,
    quick_context,
)


class TestContexts:
    def test_contexts_are_fresh_per_call(self):
        # Factory semantics: mutating one caller's options must not
        # leak into the next caller's context.
        first = quick_context()
        first.options.collect_waveforms = True
        first.options.segments = 1
        second = quick_context()
        assert second is not first
        assert second.options is not first.options
        assert second.options.collect_waveforms is False
        assert second.options.segments == 4

    def test_heavy_artifacts_are_shared(self):
        # The generator and chip are pure functions of their parameters
        # and expensive to build; contexts share them.
        a, b = quick_context(), quick_context()
        assert a.generator is b.generator
        assert a.chip is b.chip
        assert default_context().chip is a.chip

    def test_sessions_share_the_result_cache(self):
        a, b = quick_context(), quick_context()
        assert a.session is not b.session
        assert a.session.cache is b.session.cache

    def test_quick_is_cheaper_than_default(self):
        quick = quick_context()
        full = default_context()
        assert quick.options.segments <= full.options.segments
        assert quick.freq_points_per_decade <= full.freq_points_per_decade
        assert (
            quick.generator.epi_repetitions < full.generator.epi_repetitions
        )

    def test_resonant_frequency_matches_chip(self):
        from repro.pdn.impedance import impedance_profile

        ctx = quick_context()
        profile = impedance_profile(
            ctx.chip.netlist, "load_core0", "core0", 1e5, 1e8,
            modal=ctx.chip.modal,
        )
        peak_freq, _ = profile.peak()
        assert peak_freq == pytest.approx(RESONANT_FREQ_HZ, rel=0.25)

    def test_delta_i_points_cached(self):
        ctx = quick_context()
        first = ctx.delta_i_points()
        executed = ctx.session.telemetry.counter("engine.runs_executed")
        # The dataset is rebuilt, but every run replays from the engine
        # cache — even from a *fresh* context over the same platform.
        second = quick_context().delta_i_points()
        assert ctx.session.telemetry.counter("engine.runs_executed") == executed
        assert len(first) > 20  # all distributions, sampled placements
        assert [p.p2p_by_core for p in first] == [p.p2p_by_core for p in second]

    def test_runner_binds_context_chip(self):
        ctx = quick_context()
        assert ctx.runner.chip is ctx.chip
        assert ctx.session.chip is ctx.chip
