"""Experiment context tests: caching and profile semantics."""

import pytest

from repro.experiments.common import (
    RESONANT_FREQ_HZ,
    default_context,
    quick_context,
)


class TestContexts:
    def test_quick_context_is_cached(self):
        assert quick_context() is quick_context()

    def test_default_context_is_cached(self):
        # Only identity is checked — building it is heavy and other
        # suites may already have done so.
        assert default_context() is default_context()

    def test_quick_is_cheaper_than_default(self):
        quick = quick_context()
        full = default_context()
        assert quick.options.segments <= full.options.segments
        assert quick.freq_points_per_decade <= full.freq_points_per_decade
        assert (
            quick.generator.epi_repetitions < full.generator.epi_repetitions
        )

    def test_resonant_frequency_matches_chip(self):
        from repro.pdn.impedance import impedance_profile

        ctx = quick_context()
        profile = impedance_profile(
            ctx.chip.netlist, "load_core0", "core0", 1e5, 1e8,
            modal=ctx.chip.modal,
        )
        peak_freq, _ = profile.peak()
        assert peak_freq == pytest.approx(RESONANT_FREQ_HZ, rel=0.25)

    def test_delta_i_points_cached(self):
        ctx = quick_context()
        first = ctx.delta_i_points()
        second = ctx.delta_i_points()
        assert first is second
        assert len(first) > 20  # all distributions, sampled placements

    def test_runner_binds_context_chip(self):
        ctx = quick_context()
        assert ctx.runner.chip is ctx.chip
