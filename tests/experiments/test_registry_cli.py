"""Registry and CLI plumbing tests (no heavy experiment execution)."""

import pytest

from repro.cli import build_parser, main
from repro.errors import ExperimentError
from repro.experiments.registry import (
    ExperimentResult,
    all_experiments,
    get_experiment,
)

EXPECTED_IDS = {
    "table1", "fig7a", "fig7b", "fig8", "fig9", "fig10",
    "fig11a", "fig11b", "fig12", "fig13a", "fig13b", "fig14", "fig15",
}


class TestRegistry:
    def test_every_paper_artifact_is_registered(self):
        assert set(all_experiments()) == EXPECTED_IDS

    def test_titles_are_nonempty(self):
        for title in all_experiments().values():
            assert title

    def test_get_experiment_returns_callable(self):
        driver = get_experiment("fig7b")
        assert callable(driver)

    def test_unknown_id_raises_with_suggestions(self):
        with pytest.raises(ExperimentError, match="known:"):
            get_experiment("fig99")

    def test_result_str_includes_id(self):
        result = ExperimentResult("x1", "title", "body")
        assert "x1" in str(result)
        assert "body" in str(result)


class TestCli:
    def test_parser_accepts_quick_flag(self):
        args = build_parser().parse_args(["--quick", "run", "fig7b"])
        assert args.quick
        assert args.experiments == ["fig7b"]

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPECTED_IDS:
            assert experiment_id in out

    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "error" in capsys.readouterr().err

    def test_run_cheap_experiment(self, capsys):
        assert main(["--quick", "run", "fig7b"]) == 0
        out = capsys.readouterr().out
        assert "resonant bands" in out
