"""Registry and CLI plumbing tests (no heavy experiment execution)."""

import pytest

from repro.cli import build_parser, main
from repro.errors import ExperimentError
from repro.experiments.registry import (
    ExperimentResult,
    all_experiments,
    get_experiment,
)

EXPECTED_IDS = {
    "table1", "fig7a", "fig7b", "fig8", "fig9", "fig10",
    "fig11a", "fig11b", "fig12", "fig13a", "fig13b", "fig14", "fig15",
    "ctrl-gain", "ctrl-attack",
}


class TestRegistry:
    def test_every_paper_artifact_is_registered(self):
        assert set(all_experiments()) == EXPECTED_IDS

    def test_titles_are_nonempty(self):
        for title in all_experiments().values():
            assert title

    def test_get_experiment_returns_callable(self):
        driver = get_experiment("fig7b")
        assert callable(driver)

    def test_unknown_id_raises_with_suggestions(self):
        with pytest.raises(ExperimentError, match="known:"):
            get_experiment("fig99")

    def test_result_str_includes_id(self):
        result = ExperimentResult("x1", "title", "body")
        assert "x1" in str(result)
        assert "body" in str(result)


class TestCli:
    def test_parser_accepts_quick_flag(self):
        args = build_parser().parse_args(["--quick", "run", "fig7b"])
        assert args.quick
        assert args.experiments == ["fig7b"]

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPECTED_IDS:
            assert experiment_id in out

    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "error" in capsys.readouterr().err

    def test_run_cheap_experiment(self, capsys):
        assert main(["--quick", "run", "fig7b"]) == 0
        out = capsys.readouterr().out
        assert "resonant bands" in out


class TestMetricsPlaneCli:
    def test_parser_accepts_new_observability_flags(self):
        parser = build_parser()
        args = parser.parse_args([
            "serve", "--http-metrics", "0", "--metrics-window", "2.5",
            "--slo", "slo.json",
        ])
        assert args.http_metrics == 0
        assert args.metrics_window == 2.5
        assert args.slo == "slo.json"
        args = parser.parse_args([
            "top", "--campaign", "dir", "--serve", ":4650", "--once",
        ])
        assert args.campaign == "dir"
        assert args.once
        args = parser.parse_args(["plan", "fig7a", "--workers", "8"])
        assert args.workers == 8
        args = parser.parse_args(["query", "--metrics-text"])
        assert args.metrics_text

    def test_top_needs_a_target(self, capsys):
        assert main(["top", "--once"]) == 2
        assert "--campaign and/or --serve" in capsys.readouterr().err

    def test_top_once_renders_live_status(self, tmp_path, capsys):
        import json

        status = {
            "ts": 0.0, "tick": 3, "phase": "folded", "total_runs": 6,
            "counts": {"complete": 6, "failed": 0, "claimed": 0,
                       "poisoned": 0},
            "leases": {"live": 0, "by_worker": {}},
            "observed_steals": 1, "completion_rate": None,
            "workers": {}, "transitions": [],
        }
        (tmp_path / "live-status.json").write_text(json.dumps(status))
        assert main(["top", "--campaign", str(tmp_path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "phase=folded" in out
        assert "6/6" in out
        assert "steals observed=1" in out

    def test_plan_workers_autodetected_from_live_status(
        self, tmp_path, capsys
    ):
        """`plan --since <fleet dir>` scales the ETA by the campaign's
        live (non-draining) worker census."""
        import json

        from repro.engine import CampaignManifest

        CampaignManifest(tmp_path).mark_complete("run:x")
        (tmp_path / "live-status.json").write_text(json.dumps({
            "phase": "running",
            "workers": {
                "w0": {"state": "executing"},
                "w1": {"state": "idle"},
                "w2": {"state": "stopped"},
            },
        }))
        baseline = tmp_path / "telemetry.json"
        baseline.write_text(json.dumps({
            "histograms": {"engine.run.seconds": {"count": 4, "mean": 2.0}}
        }))
        assert main([
            "--quick", "plan", "fig7b", "--since", str(tmp_path),
            "--telemetry", str(baseline),
        ]) == 0
        out = capsys.readouterr().out
        assert "x 2 worker(s) [live fleet]" in out
