"""Process variation and workload descriptor tests."""

import pytest

from repro.errors import ConfigError
from repro.machine.variation import LAYOUT_SENSITIVITY, draw_variation
from repro.machine.workload import CurrentProgram, SyncSpec, idle_program


class TestVariation:
    def test_deterministic_per_chip(self):
        a = draw_variation(17, 0)
        b = draw_variation(17, 0)
        assert a == b

    def test_chips_differ(self):
        assert draw_variation(17, 0) != draw_variation(17, 1)

    def test_vectors_cover_six_cores(self):
        v = draw_variation(1)
        assert len(v.r_scale) == 6
        assert len(v.skitter_sensitivity) == 6

    def test_scales_near_unity(self):
        v = draw_variation(1, electrical_sigma=0.03)
        for s in v.r_scale + v.c_scale:
            assert 0.9 < s < 1.1

    def test_layout_bias_prefers_cores_2_and_4(self):
        # Across many chips, cores 2 and 4 should read hottest on
        # average (the paper's observation on its parts).
        totals = [0.0] * 6
        for chip in range(24):
            v = draw_variation(99, chip)
            for c in range(6):
                totals[c] += v.skitter_sensitivity[c]
        ranked = sorted(range(6), key=lambda c: -totals[c])
        assert set(ranked[:2]) == {2, 4}

    def test_layout_vector_shape(self):
        assert len(LAYOUT_SENSITIVITY) == 6
        assert max(LAYOUT_SENSITIVITY) == LAYOUT_SENSITIVITY[2]

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigError):
            draw_variation(1, electrical_sigma=-0.1)


class TestSyncSpec:
    def test_defaults_match_paper(self):
        spec = SyncSpec()
        assert spec.events_per_sync == 1000
        assert spec.interval == 4e-3

    def test_offset_must_sit_on_tod_grid(self):
        SyncSpec(offset=125e-9)
        with pytest.raises(ConfigError):
            SyncSpec(offset=100e-9)

    def test_with_offset(self):
        spec = SyncSpec().with_offset(62.5e-9)
        assert spec.offset == 62.5e-9
        assert spec.events_per_sync == 1000

    def test_zero_events_rejected(self):
        with pytest.raises(ConfigError):
            SyncSpec(events_per_sync=0)


class TestCurrentProgram:
    def test_delta_and_average(self):
        prog = CurrentProgram("p", i_low=10.0, i_high=30.0, freq_hz=1e6, duty=0.5)
        assert prog.delta_i == 20.0
        assert prog.average_current == 20.0
        assert not prog.is_steady

    def test_steady_when_no_frequency(self):
        prog = CurrentProgram("p", i_low=10.0, i_high=10.0)
        assert prog.is_steady
        assert prog.average_current == 10.0

    def test_steady_when_no_swing(self):
        prog = CurrentProgram("p", i_low=10.0, i_high=10.0, freq_hz=1e6)
        assert prog.is_steady

    def test_idle_program(self):
        prog = idle_program(13.5)
        assert prog.is_steady
        assert prog.i_low == 13.5

    def test_invalid_levels_rejected(self):
        with pytest.raises(ConfigError):
            CurrentProgram("p", i_low=10.0, i_high=5.0)
        with pytest.raises(ConfigError):
            CurrentProgram("p", i_low=-1.0, i_high=5.0)

    def test_invalid_duty_rejected(self):
        with pytest.raises(ConfigError):
            CurrentProgram("p", i_low=1.0, i_high=2.0, freq_hz=1e6, duty=0.0)

    def test_with_sync(self):
        prog = CurrentProgram("p", i_low=1.0, i_high=2.0, freq_hz=1e6)
        synced = prog.with_sync(SyncSpec())
        assert synced.sync is not None
        assert prog.sync is None  # original untouched
