"""TOD clock facility tests."""

import pytest

from repro.errors import ConfigError
from repro.machine.tod import SYNC_INTERVAL, TOD_STEP, TodClock


@pytest.fixture()
def tod():
    return TodClock()


class TestConstants:
    def test_paper_values(self):
        assert TOD_STEP == 62.5e-9
        assert SYNC_INTERVAL == 4e-3

    def test_interval_is_whole_steps(self):
        assert (SYNC_INTERVAL / TOD_STEP) == pytest.approx(64000)


class TestTicks:
    def test_tick_counting(self, tod):
        assert tod.ticks(0.0) == 0
        assert tod.ticks(62.5e-9) == 1
        assert tod.ticks(1e-6) == 16

    def test_negative_time_rejected(self, tod):
        with pytest.raises(ConfigError):
            tod.ticks(-1.0)


class TestQuantizeOffset:
    def test_exact_multiples_pass(self, tod):
        assert tod.quantize_offset(125e-9) == pytest.approx(125e-9)
        assert tod.quantize_offset(0.0) == 0.0

    def test_off_grid_rejected(self, tod):
        with pytest.raises(ConfigError, match="TOD step"):
            tod.quantize_offset(50e-9)


class TestNextSync:
    def test_first_sync_at_zero(self, tod):
        assert tod.next_sync(0.0) == 0.0

    def test_next_interval(self, tod):
        assert tod.next_sync(1e-3) == pytest.approx(4e-3)
        assert tod.next_sync(4e-3) == pytest.approx(4e-3)
        assert tod.next_sync(4.1e-3) == pytest.approx(8e-3)

    def test_programmed_offset_shifts_exit(self, tod):
        assert tod.next_sync(0.0, offset_s=62.5e-9) == pytest.approx(62.5e-9)
        assert tod.next_sync(1e-3, offset_s=125e-9) == pytest.approx(4e-3 + 125e-9)

    def test_invalid_configuration(self):
        with pytest.raises(ConfigError):
            TodClock(step=0.0)
        with pytest.raises(ConfigError):
            TodClock(step=1e-9, sync_interval=1.5e-9)
