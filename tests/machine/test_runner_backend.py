"""Reference vs compiled-kernel solve paths through the runner: the
two backends must produce interchangeable runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.machine.runner import ChipRunner, RunOptions
from repro.machine.workload import CurrentProgram, SyncSpec, idle_program
from repro.pdn.kernels import KERNEL_TOLERANCE_V


def didt(i_low=14.0, i_high=32.0, freq=2.6e6, sync=False, offset=0.0):
    return CurrentProgram(
        name="didt-backend",
        i_low=i_low,
        i_high=i_high,
        freq_hz=freq,
        rise_time=11e-9,
        sync=SyncSpec(offset=offset, events_per_sync=1000) if sync else None,
    )


@pytest.fixture(scope="module")
def runner(chip):
    return ChipRunner(chip)


@pytest.fixture(scope="module")
def kernel(chip):
    return chip.compiled_kernel


def assert_equivalent(reference, fast):
    for ref, quick in zip(reference.measurements, fast.measurements):
        assert quick.coherent_delta_i == ref.coherent_delta_i
        assert abs(quick.v_min - ref.v_min) < KERNEL_TOLERANCE_V
        assert abs(quick.v_max - ref.v_max) < KERNEL_TOLERANCE_V
    for node, (times, volts) in reference.waveforms.items():
        t_fast, v_fast = fast.waveforms[node]
        assert np.array_equal(t_fast, times)
        assert np.abs(v_fast - volts).max() < KERNEL_TOLERANCE_V


MAPPINGS = {
    "synchronized": lambda: [didt(sync=True)] * 6,
    "unsynchronized": lambda: [didt()] * 6,
    "misaligned": lambda: [didt(sync=True, offset=i * 62.5e-9)
                           for i in range(6)],
    "partial-idle": lambda: [didt(sync=True)] * 3 + [None] * 3,
    "all-idle": lambda: [idle_program(13.5)] * 6,
}


class TestRunEquivalence:
    @pytest.mark.parametrize("shape", sorted(MAPPINGS))
    def test_backends_agree(self, runner, kernel, shape):
        mapping = MAPPINGS[shape]()
        options = RunOptions(
            segments=2, base_samples=1024, collect_waveforms=True
        )
        reference = runner.run(mapping, options, run_tag=shape)
        fast = runner.run(mapping, options, run_tag=shape, kernel=kernel)
        assert_equivalent(reference, fast)

    def test_stimulus_is_backend_independent(self, runner, chip):
        """build_stimulus + execute on either backend equals run():
        the stimulus phase never sees the kernel."""
        mapping = [didt(sync=True)] * 6
        options = RunOptions(segments=2, base_samples=1024)
        batch = runner.build_stimulus(mapping, options, "split")
        via_reference = runner.execute(batch)
        via_kernel = runner.execute(batch, kernel=chip.compiled_kernel)
        whole = runner.run(mapping, options, "split")
        assert via_reference.p2p_by_core == whole.p2p_by_core
        assert_equivalent(via_reference, via_kernel)


class TestRunBatch:
    def test_matches_sequential_runs(self, runner, kernel):
        options = RunOptions(segments=2, base_samples=1024)
        mappings = [[didt(sync=True, freq=f)] * 6 for f in (1.3e6, 2.6e6)]
        tags = ["batch0", "batch1"]
        batched = runner.run_batch(
            mappings, options, run_tags=tags, kernel=kernel
        )
        for mapping, tag, result in zip(mappings, tags, batched):
            single = runner.run(mapping, options, tag, kernel=kernel)
            assert result.p2p_by_core == single.p2p_by_core

    def test_default_tags(self, runner):
        options = RunOptions(segments=1, base_samples=512)
        mappings = [[didt()] * 6, [didt()] * 6]
        batched = runner.run_batch(mappings, options)
        tagged = [
            runner.run(mapping, options, f"run{i}")
            for i, mapping in enumerate(mappings)
        ]
        assert [r.p2p_by_core for r in batched] == [
            r.p2p_by_core for r in tagged
        ]

    def test_tag_length_mismatch(self, runner):
        with pytest.raises(ConfigError):
            runner.run_batch([[didt()] * 6], run_tags=["a", "b"])
