"""Chip model and service element tests."""

import pytest

from repro.errors import ConfigError
from repro.machine.chip import Chip, ChipConfig, reference_chip
from repro.machine.system import VOLTAGE_STEP, ServiceElement


class TestChip:
    def test_reference_chip_shape(self, chip):
        assert len(chip.skitters) == 6
        assert chip.vnom == pytest.approx(1.05)
        assert set(chip.unit_skitters) == {"mcu", "gx", "l3"}

    def test_rows(self, chip):
        assert chip.row_of(0) == "north"
        assert chip.row_of(2) == "north"
        assert chip.row_of(1) == "south"
        with pytest.raises(ConfigError):
            chip.row_of(6)

    def test_coupling_weights_ordering(self, chip):
        own = chip.coupling_weight(0, 0)
        row = chip.coupling_weight(0, 2)
        cross = chip.coupling_weight(0, 1)
        assert own == 1.0
        assert own >= row >= cross

    def test_variation_applied_to_pdn(self, chip):
        assert chip.pdn_params.core_r_scale == chip.variation.r_scale

    def test_skitter_sensitivity_applied(self, chip):
        for macro, sens in zip(chip.skitters, chip.variation.skitter_sensitivity):
            assert macro.sensitivity == sens

    def test_cached_artifacts_are_shared(self, chip):
        assert chip.modal is chip.modal
        assert chip.response_library is chip.response_library

    def test_with_pdn_preserves_seed(self, chip):
        other = chip.with_pdn(chip.config.pdn.without_l3_bridge())
        assert other.variation == chip.variation
        assert other.pdn_params.c_l3 < chip.pdn_params.c_l3

    def test_different_chip_ids_vary(self):
        a = reference_chip(chip_id=0)
        b = reference_chip(chip_id=1)
        assert a.variation != b.variation

    def test_invalid_ssn_weights_rejected(self):
        with pytest.raises(ConfigError):
            ChipConfig(ssn_row_weight=0.5, ssn_cross_weight=0.8)

    def test_reset_skitters(self, chip):
        chip.skitters[0].observe(1.0, 1.05)
        chip.reset_skitters()
        from repro.errors import MeasurementError
        with pytest.raises(MeasurementError):
            chip.skitters[0].read()


class TestServiceElement:
    def test_bias_stepping(self, chip):
        service = ServiceElement(chip)
        assert service.bias == 1.0
        service.step_down()
        assert service.bias == pytest.approx(1.0 - VOLTAGE_STEP)
        assert service.supply_voltage == pytest.approx(chip.vnom * 0.995)

    def test_reset(self, chip):
        service = ServiceElement(chip)
        service.set_bias_steps(-10)
        service.reset_voltage()
        assert service.bias == 1.0

    def test_range_guard(self, chip):
        service = ServiceElement(chip)
        with pytest.raises(ConfigError):
            service.set_bias_steps(-100)
        with pytest.raises(ConfigError):
            service.set_bias_steps(1.5)  # not an int

    def test_power_reading_quantized(self, chip):
        service = ServiceElement(chip)
        reading = service.read_power([20.0001234] * 6, nest_power_w=26.0)
        assert reading == pytest.approx(146.001, abs=5e-4)

    def test_power_reading_core_count_checked(self, chip):
        service = ServiceElement(chip)
        with pytest.raises(ConfigError):
            service.read_power([20.0] * 5)
