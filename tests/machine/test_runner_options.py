"""RunOptions validation: every guard fires and names its field."""

import pytest

from repro.errors import ConfigError
from repro.machine.runner import RunOptions


class TestRunOptionsValidation:
    def test_defaults_are_valid(self):
        options = RunOptions()
        assert options.segments == 8
        assert options.collect_waveforms is False

    @pytest.mark.parametrize("segments", [0, -1])
    def test_segments_floor(self, segments):
        with pytest.raises(ConfigError, match=r"segments.*\bgot\b"):
            RunOptions(segments=segments)

    @pytest.mark.parametrize("events_cap", [0, -7])
    def test_events_cap_floor(self, events_cap):
        with pytest.raises(ConfigError, match=r"events_cap.*\bgot\b"):
            RunOptions(events_cap=events_cap)

    @pytest.mark.parametrize("base_samples", [0, 63])
    def test_base_samples_floor(self, base_samples):
        with pytest.raises(ConfigError, match=r"base_samples.*\bgot\b"):
            RunOptions(base_samples=base_samples)

    def test_negative_tail_rejected(self):
        with pytest.raises(ConfigError, match=r"tail.*\bgot\b"):
            RunOptions(tail=-1e-9)

    @pytest.mark.parametrize("spacing", [0.0, -1e-6])
    def test_isolated_edge_spacing_must_be_positive(self, spacing):
        with pytest.raises(
            ConfigError, match=r"isolated_edge_spacing.*\bgot\b"
        ):
            RunOptions(isolated_edge_spacing=spacing)

    @pytest.mark.parametrize("vrm", [0.0, -20e-6])
    def test_vrm_response_must_be_positive(self, vrm):
        with pytest.raises(ConfigError, match=r"vrm_response.*\bgot\b"):
            RunOptions(vrm_response=vrm)

    def test_message_carries_offending_value(self):
        with pytest.raises(ConfigError, match=r"got -3"):
            RunOptions(segments=-3)

    def test_boundary_values_accepted(self):
        options = RunOptions(segments=1, events_cap=1, base_samples=64, tail=0.0)
        assert options.segments == 1
        assert options.tail == 0.0
