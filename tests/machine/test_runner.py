"""Run-engine tests: the central measurement loop."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.machine.runner import ChipRunner, RunOptions
from repro.machine.workload import CurrentProgram, SyncSpec, idle_program


def didt(i_low=14.0, i_high=32.0, freq=2.6e6, sync=False, offset=0.0, events=1000):
    return CurrentProgram(
        name="didt-test",
        i_low=i_low,
        i_high=i_high,
        freq_hz=freq,
        rise_time=11e-9,
        sync=SyncSpec(offset=offset, events_per_sync=events) if sync else None,
    )


@pytest.fixture(scope="module")
def runner(chip):
    return ChipRunner(chip)


@pytest.fixture(scope="module")
def options():
    return RunOptions(segments=2, base_samples=1024)


class TestBasicRuns:
    def test_idle_chip_reads_near_zero_noise(self, runner, options):
        result = runner.run([idle_program(13.5)] * 6, options)
        assert result.max_p2p <= 4.0  # at most one quantization step

    def test_all_core_stressmarks_read_noise(self, runner, options):
        result = runner.run([didt(sync=True)] * 6, options)
        assert result.max_p2p > 30.0
        assert len(result.measurements) == 6

    def test_mapping_length_enforced(self, runner, options):
        with pytest.raises(ConfigError):
            runner.run([None] * 5, options)

    def test_none_means_idle(self, runner, options):
        explicit = runner.run([idle_program(13.5)] * 6, options, "a")
        implicit = runner.run([None] * 6, options, "a")
        # Nearly identical DC conditions -> same quantized readings.
        assert implicit.p2p_by_core == explicit.p2p_by_core

    def test_reproducible_for_same_tag(self, runner, options):
        a = runner.run([didt()] * 6, options, run_tag="same")
        b = runner.run([didt()] * 6, options, run_tag="same")
        assert a.p2p_by_core == b.p2p_by_core

    def test_unsync_phases_vary_with_tag(self, runner, options):
        a = runner.run([didt()] * 6, options, run_tag="tag-a")
        b = runner.run([didt()] * 6, options, run_tag="tag-b")
        assert a.worst_vmin != b.worst_vmin


class TestPaperOrderings:
    """The headline qualitative relations of the paper must hold."""

    def test_sync_beats_unsync(self, runner, options):
        sync = runner.run([didt(sync=True)] * 6, options, "o1")
        unsync = runner.run([didt()] * 6, options, "o1")
        assert sync.max_p2p > unsync.max_p2p

    def test_noise_grows_with_delta_i(self, runner, options):
        small = runner.run([didt(i_high=23.0, sync=True)] * 6, options, "d")
        large = runner.run([didt(i_high=32.0, sync=True)] * 6, options, "d")
        assert large.max_p2p >= small.max_p2p
        assert large.worst_vmin < small.worst_vmin

    def test_fewer_active_cores_less_noise(self, runner, options):
        idle = idle_program(13.5)
        two = runner.run([didt(sync=True)] * 2 + [idle] * 4, options, "c")
        six = runner.run([didt(sync=True)] * 6, options, "c")
        assert six.max_p2p >= two.max_p2p

    def test_misaligned_offsets_reduce_noise(self, runner, options):
        aligned = runner.run([didt(sync=True)] * 6, options, "m")
        spread = runner.run(
            [didt(sync=True, offset=(i % 2) * 62.5e-9) for i in range(6)],
            options,
            "m",
        )
        assert spread.max_p2p <= aligned.max_p2p

    def test_global_offset_shift_is_invariant(self, runner, options):
        """Shifting every core by the same offset changes nothing: only
        relative alignment matters."""
        base = runner.run([didt(sync=True)] * 6, options, "g")
        shifted = runner.run(
            [didt(sync=True, offset=125e-9)] * 6, options, "g"
        )
        assert base.p2p_by_core == shifted.p2p_by_core

    def test_resonant_beats_off_resonant(self, runner, options):
        at_res = runner.run([didt(sync=True, freq=2.6e6)] * 6, options, "f")
        off_res = runner.run([didt(sync=True, freq=3e5)] * 6, options, "f")
        assert at_res.max_p2p >= off_res.max_p2p


class TestMeasurementFields:
    def test_vmin_below_vmax(self, runner, options, chip):
        result = runner.run([didt(sync=True)] * 6, options)
        for m in result.measurements:
            assert m.v_min < m.v_max
            assert m.droop > 0

    def test_worst_vmin_is_min(self, runner, options):
        result = runner.run([didt(sync=True)] * 6, options)
        assert result.worst_vmin == min(m.v_min for m in result.measurements)

    def test_measurement_lookup(self, runner, options):
        result = runner.run([didt()] * 6, options)
        assert result.measurement(3).core == 3
        from repro.errors import MeasurementError
        with pytest.raises(MeasurementError):
            result.measurement(9)

    def test_coherent_delta_i_larger_when_aligned(self, runner, options):
        aligned = runner.run([didt(sync=True)] * 6, options, "cc")
        unsync = runner.run([didt()] * 6, options, "cc")
        assert (
            aligned.measurements[0].coherent_delta_i
            >= unsync.measurements[0].coherent_delta_i
        )

    def test_waveform_collection(self, runner, chip):
        options = RunOptions(
            segments=1, base_samples=1024, collect_waveforms=True
        )
        result = runner.run([didt(sync=True)] * 6, options)
        assert "core0" in result.waveforms
        assert "dom_n" in result.waveforms
        times, volts = result.waveforms["core0"]
        assert times.shape == volts.shape
        assert np.all(np.diff(times) > 0)


class TestOptionGuards:
    def test_bad_segments(self):
        with pytest.raises(ConfigError):
            RunOptions(segments=0)

    def test_bad_events_cap(self):
        with pytest.raises(ConfigError):
            RunOptions(events_cap=0)

    def test_bad_samples(self):
        with pytest.raises(ConfigError):
            RunOptions(base_samples=16)
