"""Workload profile and utilization trace tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workloads.profiles import (
    WorkloadProfile,
    build_profile_library,
    compile_profile,
)
from repro.workloads.traces import UtilizationTrace, synthetic_utilization_trace


class TestProfileDefinitions:
    def test_library_contains_paper_profiles(self):
        library = build_profile_library()
        assert "customer-worst" in library
        assert "idle" in library
        assert "didt-test" in library

    def test_customer_worst_matches_paper_extrapolation(self):
        customer = build_profile_library()["customer-worst"]
        assert customer.delta_i_fraction == pytest.approx(0.8)
        assert not customer.synchronized

    def test_only_test_codes_synchronize(self):
        library = build_profile_library()
        for name, profile in library.items():
            if profile.synchronized:
                assert name == "didt-test"

    def test_validation(self):
        with pytest.raises(ConfigError):
            WorkloadProfile("x", delta_i_fraction=1.5, activity_fraction=0.5,
                            dominant_freq_hz=1e6)
        with pytest.raises(ConfigError):
            WorkloadProfile("x", delta_i_fraction=0.5, activity_fraction=0.5,
                            dominant_freq_hz=None)


class TestCompilation:
    def test_idle_compiles_steady(self, generator):
        program = compile_profile(build_profile_library()["idle"], generator)
        assert program.is_steady

    def test_didt_test_reaches_full_envelope(self, generator):
        program = compile_profile(build_profile_library()["didt-test"], generator)
        mark = generator.max_didt(freq_hz=2.6e6, synchronize=True)
        assert program.delta_i == pytest.approx(mark.delta_i, rel=0.01)
        assert program.sync is not None

    def test_customer_is_80pct_of_envelope(self, generator):
        library = build_profile_library()
        customer = compile_profile(library["customer-worst"], generator)
        full = compile_profile(library["didt-test"], generator)
        assert customer.delta_i == pytest.approx(0.8 * full.delta_i, rel=0.01)
        assert customer.sync is None

    def test_swing_never_exceeds_envelope(self, generator):
        library = build_profile_library()
        full = compile_profile(library["didt-test"], generator)
        for profile in library.values():
            program = compile_profile(profile, generator)
            assert program.i_high <= full.i_high + 1e-9
            assert program.i_low >= full.i_low - 1e-9

    def test_activity_positions_baseline(self, generator):
        hot = WorkloadProfile("hot", 0.2, 0.9, 1e6)
        cold = WorkloadProfile("cold", 0.2, 0.1, 1e6)
        assert (
            compile_profile(hot, generator).i_low
            > compile_profile(cold, generator).i_low
        )


class TestUtilizationTraces:
    def test_shape_and_bounds(self):
        trace = synthetic_utilization_trace(seed=1)
        assert trace.counts.size == 288
        assert trace.counts.min() >= 0
        assert trace.counts.max() <= 6
        assert trace.duration_s == pytest.approx(288 * 300.0)

    def test_deterministic(self):
        a = synthetic_utilization_trace(seed=7)
        b = synthetic_utilization_trace(seed=7)
        assert np.array_equal(a.counts, b.counts)

    def test_seed_changes_trace(self):
        a = synthetic_utilization_trace(seed=1)
        b = synthetic_utilization_trace(seed=2)
        assert not np.array_equal(a.counts, b.counts)

    def test_mean_utilization_tracks_load_band(self):
        trace = synthetic_utilization_trace(base_load=0.2, peak_load=0.6, noise=0.0)
        assert 0.2 <= trace.mean_utilization <= 0.6

    def test_occupancy_shares_sum_to_one(self):
        trace = synthetic_utilization_trace(seed=3)
        assert sum(trace.occupancy_shares().values()) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            UtilizationTrace(counts=np.array([]), interval_s=1.0)
        with pytest.raises(ConfigError):
            UtilizationTrace(counts=np.array([7]), interval_s=1.0)
        with pytest.raises(ConfigError):
            synthetic_utilization_trace(base_load=0.9, peak_load=0.2)
