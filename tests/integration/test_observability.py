"""Acceptance: traced, fault-injected parallel sweep ≡ serial sweep.

The PR-level criterion, end to end: a fault-injected ``--jobs 2``
Figure 11a-style sweep must produce an event log whose merged counters
(runs, retries, cache hits) are identical to the same sweep run
serially, and ``repro-noise profile`` must render p50/p95/p99 run
latency and the span tree from that log alone.
"""

from __future__ import annotations

import pytest

from repro.analysis.sensitivity import sweep_delta_i_mappings
from repro.engine import ResultCache, SimulationSession
from repro.engine.executor import ProcessExecutor, SerialExecutor
from repro.engine.resilience import RetryPolicy
from repro.faults import FaultPlan
from repro.faults.harness import reset_fault_memo
from repro.machine.runner import RunOptions
from repro.obs import (
    EventLog,
    Telemetry,
    load_profile,
    render_profile,
    validate_event_log,
)

#: Transient faults: retry absorbs them, so both backends converge to
#: the same results while burning the same (per-run-key) extra attempts.
FAULTS = FaultPlan(seed=11, exception_rate=0.4)

#: The counters the acceptance criterion names, plus the worker-side
#: ones the multiprocess merge exists for.
COMPARED = (
    "engine.runs",
    "engine.runs_executed",
    "engine.retries",
    "engine.failures",
    "engine.cache.hits",
    "engine.cache.misses",
    "engine.solver.invocations",
)


def traced_fig11a_sweep(generator, chip, executor, log_path):
    """A reduced Figure 11a dataset sweep (every max-only distribution,
    one placement each), traced and fault-injected."""
    reset_fault_memo()
    telemetry = Telemetry()
    with EventLog(log_path) as log:
        telemetry.enable_tracing(events=log)
        session = SimulationSession(
            chip,
            RunOptions(segments=2, base_samples=1024),
            cache=ResultCache(telemetry=telemetry),
            executor=executor,
            retry=RetryPolicy(max_retries=3, backoff_base_s=0.0),
            faults=FAULTS,
            telemetry=telemetry,
        )
        with telemetry.span("campaign"):
            points = sweep_delta_i_mappings(
                generator, chip, session=session,
                placements_per_distribution=1,
                workload_filter=lambda dist: dist[1] == 0,
            )
        telemetry.emit("campaign.completed", snapshot=telemetry.snapshot())
    return points, telemetry


@pytest.fixture(scope="module")
def traced_pair(generator, chip, tmp_path_factory):
    root = tmp_path_factory.mktemp("obs-acceptance")
    serial = traced_fig11a_sweep(
        generator, chip, SerialExecutor(), root / "serial.jsonl"
    )
    pooled = traced_fig11a_sweep(
        generator, chip, ProcessExecutor(jobs=2), root / "jobs2.jsonl"
    )
    return root, serial, pooled


class TestParallelEqualsSerial:
    def test_merged_counters_identical(self, traced_pair):
        _, (_, serial), (_, pooled) = traced_pair
        assert serial.counter("engine.retries") > 0  # faults actually fired
        for name in COMPARED:
            assert pooled.counter(name) == serial.counter(name), name

    def test_results_identical(self, traced_pair):
        _, (serial_points, _), (pooled_points, _) = traced_pair
        assert [p.p2p_by_core for p in pooled_points] == [
            p.p2p_by_core for p in serial_points
        ]

    def test_event_logs_agree_and_validate(self, traced_pair):
        root, _, _ = traced_pair
        tallies = []
        for name in ("serial.jsonl", "jobs2.jsonl"):
            n_valid, errors = validate_event_log(root / name)
            assert errors == []
            assert n_valid > 0
            profile = load_profile(root / name)
            tallies.append(
                (
                    len(profile.completed_runs),
                    profile.cached,
                    profile.scheduled,
                    sum(
                        int(e.get("retries", 0))
                        for e in profile.events
                        if e["event"] == "run.retried"
                    ),
                )
            )
        assert tallies[0] == tallies[1]

    def test_profile_renders_percentiles_and_span_tree(self, traced_pair):
        root, _, _ = traced_pair
        text = render_profile(load_profile(root / "jobs2.jsonl"))
        assert "p50=" in text and "p95=" in text and "p99=" in text
        assert "-- span tree --" in text
        assert "campaign" in text and "session.execute" in text
