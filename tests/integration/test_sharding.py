"""End-to-end sharding: the union of N shard runs — separate cache
directories and manifests, merged afterwards — is bit-identical to an
unsharded campaign, down to the exported artifacts."""

from __future__ import annotations

import pytest

from repro.engine import CampaignManifest, ResultCache, SimulationSession
from repro.engine.cache import merge_cache_dirs
from repro.experiments import compile_campaign
from repro.experiments.common import ExperimentContext
from repro.experiments.exporter import export_results
from repro.experiments.registry import get_experiment
from repro.machine.runner import RunOptions
from repro.obs import Telemetry
from repro.plan import ShardSpec, execute_plan

FIGURES = ["fig7a", "fig9"]
N_SHARDS = 2


def _tiny_context(generator, chip) -> ExperimentContext:
    return ExperimentContext(
        generator=generator,
        chip=chip,
        options=RunOptions(segments=2, base_samples=1024),
        freq_points_per_decade=1,
        delta_i_placements=1,
        misalignment_assignments=1,
    )


def _bind_session(context, cache, telemetry) -> None:
    context._session = SimulationSession(
        context.chip, context.options, cache=cache,
        executor="serial", telemetry=telemetry,
    )


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    return tmp_path_factory.mktemp("sharding")


@pytest.fixture(scope="module")
def context(generator, chip):
    return _tiny_context(generator, chip)


@pytest.fixture(scope="module")
def campaign(context):
    return compile_campaign(FIGURES, context)


@pytest.fixture(scope="module")
def shard_reports(campaign, context, workdir):
    """Execute every shard into its own cache dir + manifest (as N
    independent hosts would)."""
    reports = []
    for index in range(N_SHARDS):
        shard_dir = workdir / f"shard{index}"
        shard_dir.mkdir()
        telemetry = Telemetry()
        reports.append(
            execute_plan(
                campaign,
                context.chip,
                shard=ShardSpec(index, N_SHARDS),
                cache=ResultCache(
                    cache_dir=shard_dir, telemetry=telemetry
                ),
                executor="serial",
                manifest=CampaignManifest(shard_dir),
                telemetry=telemetry,
            )
        )
    return reports


@pytest.fixture(scope="module")
def merged_dir(shard_reports, workdir):
    merged = workdir / "merged"
    merge_cache_dirs(
        merged, *(workdir / f"shard{i}" for i in range(N_SHARDS))
    )
    CampaignManifest(merged).merge_from(
        *(CampaignManifest(workdir / f"shard{i}") for i in range(N_SHARDS))
    )
    return merged


class TestShardExecution:
    def test_shards_cover_the_plan_disjointly(self, campaign, shard_reports):
        fingerprints = [
            fp for report in shard_reports for fp in report.results
        ]
        assert len(fingerprints) == campaign.total_unique
        assert sorted(fingerprints) == sorted(campaign.unique)

    def test_every_shard_run_executed_cold(self, shard_reports):
        for report in shard_reports:
            assert report.executed == report.runs
            assert report.failed == 0

    def test_shard_manifests_bind_the_plan(
        self, campaign, shard_reports, workdir
    ):
        for index in range(N_SHARDS):
            manifest = CampaignManifest(workdir / f"shard{index}")
            assert manifest.campaign == {
                "plan": campaign.fingerprint(),
                "shard": f"{index}/{N_SHARDS}",
            }


class TestMergedEqualsUnsharded:
    def test_merged_cache_replays_the_whole_campaign(
        self, campaign, context, merged_dir
    ):
        """After the merge, re-executing the unsharded plan touches the
        solver zero times."""
        telemetry = Telemetry()
        report = execute_plan(
            campaign,
            context.chip,
            cache=ResultCache(cache_dir=merged_dir, telemetry=telemetry),
            executor="serial",
            telemetry=telemetry,
        )
        assert report.executed == 0
        assert report.replayed == campaign.total_unique
        assert telemetry.counter("engine.runs_executed") == 0

    def test_merged_manifest_has_every_run_point(
        self, campaign, merged_dir
    ):
        manifest = CampaignManifest(merged_dir)
        completed = manifest.completed
        assert all(f"run:{fp}" in completed for fp in campaign.unique)
        # The union adopts the plan identity but is no single shard.
        assert manifest.campaign == {"plan": campaign.fingerprint()}

    def test_exports_bit_identical(
        self, generator, chip, merged_dir, workdir
    ):
        """The acceptance criterion: figure artifacts exported from the
        merged shard caches are byte-for-byte what an unsharded
        campaign exports."""
        export_dirs = []
        for name, cache_dir in (
            ("from-merged", merged_dir),
            ("from-scratch", workdir / "scratch-cache"),
        ):
            context = _tiny_context(generator, chip)
            telemetry = Telemetry()
            _bind_session(
                context,
                ResultCache(cache_dir=cache_dir, telemetry=telemetry),
                telemetry,
            )
            results = [
                get_experiment(figure)(context) for figure in FIGURES
            ]
            out = workdir / name
            export_results(results, out, telemetry)
            export_dirs.append(out)
            if name == "from-merged":
                # Every run must have come from the merged shard caches.
                assert telemetry.counter("engine.runs_executed") == 0
        merged_out, scratch_out = export_dirs
        for figure in FIGURES:
            for suffix in (".json", ".txt"):
                a = (merged_out / f"{figure}{suffix}").read_bytes()
                b = (scratch_out / f"{figure}{suffix}").read_bytes()
                assert a == b, f"{figure}{suffix} differs across paths"
