"""End-to-end integration tests: the whole stack, from ISA to skitter.

These retrace the paper's narrative top to bottom on the session
fixtures: profile the ISA, search the max-power sequence, assemble
stressmarks, run them on the chip, and verify the headline findings.
"""

import pytest

from repro import (
    ChipRunner,
    RunOptions,
    StressmarkSpec,
    idle_program,
    reference_chip,
)
from repro.measure.vmin import run_vmin_experiment


@pytest.fixture(scope="module")
def options():
    return RunOptions(segments=4, base_samples=1536)


@pytest.fixture(scope="module")
def runner(chip):
    return ChipRunner(chip)


@pytest.fixture(scope="module")
def sync_mark(generator):
    return generator.max_didt(freq_hz=2.6e6, synchronize=True)


class TestHeadlineNumbers:
    """The paper's two headline noise levels at the resonant band."""

    def test_synchronized_noise_near_61(self, runner, sync_mark, options):
        result = runner.run([sync_mark.current_program()] * 6, options, "h1")
        assert result.max_p2p == pytest.approx(61.0, abs=8.0)

    def test_unsynchronized_noise_near_41(self, runner, generator, options):
        program = generator.max_didt(
            freq_hz=2.6e6, synchronize=False
        ).current_program()
        result = runner.run([program] * 6, options, "h2")
        assert result.max_p2p == pytest.approx(41.0, abs=8.0)

    def test_sync_uplift_about_20_points(self, runner, generator, options):
        synced = runner.run(
            [generator.max_didt(freq_hz=2.6e6, synchronize=True).current_program()] * 6,
            options, "h3",
        )
        unsynced = runner.run(
            [generator.max_didt(freq_hz=2.6e6, synchronize=False).current_program()] * 6,
            options, "h3",
        )
        assert synced.max_p2p - unsynced.max_p2p == pytest.approx(20.0, abs=10.0)


class TestParameterHierarchy:
    """§V-F: ΔI magnitude and synchronization are primary; stimulus
    frequency and consecutive-event count are secondary."""

    def test_sync_matters_more_than_resonance(self, runner, generator, options):
        sync_off_resonance = runner.run(
            [generator.max_didt(freq_hz=4e5, synchronize=True).current_program()] * 6,
            options, "p1",
        ).max_p2p
        unsync_at_resonance = runner.run(
            [generator.max_didt(freq_hz=2.6e6, synchronize=False).current_program()] * 6,
            options, "p1",
        ).max_p2p
        assert sync_off_resonance > unsync_at_resonance

    def test_event_count_is_secondary(self, chip, generator, options):
        one = run_vmin_experiment(
            chip,
            [generator.max_didt(freq_hz=2.6e6, synchronize=True, n_events=1).current_program()] * 6,
            options=options,
        )
        thousand = run_vmin_experiment(
            chip,
            [generator.max_didt(freq_hz=2.6e6, synchronize=True, n_events=1000).current_program()] * 6,
            options=options,
        )
        assert abs(one.margin_frac - thousand.margin_frac) <= 0.02

    def test_delta_i_is_primary(self, runner, generator, options):
        full = runner.run(
            [generator.max_didt(freq_hz=2.6e6, synchronize=True).current_program()] * 6,
            options, "p3",
        ).max_p2p
        half = runner.run(
            [generator.medium_didt(freq_hz=2.6e6, synchronize=True).current_program()] * 6,
            options, "p3",
        ).max_p2p
        assert full - half >= 15.0


class TestGenerationToExecutionPath:
    """The full artifact chain: spec → program → electrical → readings."""

    def test_stressmark_is_runnable_artifact(self, generator):
        mark = generator.build(
            StressmarkSpec(
                stimulus_freq_hz=1e6,
                synchronize=True,
                misalignment=187.5e-9,
                n_events=64,
            )
        )
        text = mark.assembly()
        assert "didt" in text
        program = mark.current_program()
        assert program.sync.offset == pytest.approx(187.5e-9)
        assert program.sync.events_per_sync == 64

    def test_partial_occupancy_mapping(self, runner, generator, options):
        mark = generator.max_didt(freq_hz=2.6e6, synchronize=True)
        idle = idle_program(generator.target.idle_current)
        result = runner.run(
            [mark.current_program()] * 2 + [idle] * 4, options, "g1"
        )
        full = runner.run([mark.current_program()] * 6, options, "g1")
        assert result.max_p2p < full.max_p2p

    def test_fresh_chip_instance_reproduces(self, generator, options):
        program = generator.max_didt(
            freq_hz=2.6e6, synchronize=True
        ).current_program()
        a = ChipRunner(reference_chip()).run([program] * 6, options, "g2")
        b = ChipRunner(reference_chip()).run([program] * 6, options, "g2")
        assert a.p2p_by_core == b.p2p_by_core
