"""Tests for unit helpers and formatting."""

import math

import pytest

from repro.units import (
    GHZ,
    KHZ,
    MHZ,
    MS,
    NS,
    PS,
    US,
    format_freq,
    format_si,
    format_time,
    parse_freq,
)


class TestMultipliers:
    def test_frequency_multipliers(self):
        assert KHZ == 1e3
        assert MHZ == 1e6
        assert GHZ == 1e9

    def test_time_multipliers_are_consistent(self):
        assert PS * 1e3 == pytest.approx(NS)
        assert NS * 1e3 == pytest.approx(US)
        assert US * 1e3 == pytest.approx(MS)

    def test_paper_quantities(self):
        # The paper's key constants render exactly.
        assert 62.5 * NS == pytest.approx(62.5e-9)
        assert 4 * MS == pytest.approx(4e-3)
        assert 2 * MHZ == 2e6


class TestFormatSi:
    def test_mega_range(self):
        assert format_si(2.5e6, "Hz") == "2.5MHz"

    def test_kilo_range(self):
        assert format_si(40e3, "Hz") == "40kHz"

    def test_unit_range(self):
        assert format_si(5.0, "V") == "5V"

    def test_milli_range(self):
        assert format_si(1.5e-3, "Ohm") == "1.5mOhm"
        assert format_si(0.75e-3, "Ohm") == "750uOhm"

    def test_nano_and_pico(self):
        assert format_si(62.5e-9, "s") == "62.5ns"
        assert format_si(70e-12, "H") == "70pH"

    def test_zero_and_nonfinite(self):
        assert format_si(0, "Hz") == "0Hz"
        assert format_si(math.inf, "Hz") == "infHz"

    def test_negative_value(self):
        assert format_si(-3e-3, "V") == "-3mV"

    def test_rounding_digits(self):
        assert format_si(1.23456e6, "Hz", digits=2) == "1.23MHz"


class TestFreqTimeShortcuts:
    def test_format_freq(self):
        assert format_freq(2.6e6) == "2.6MHz"

    def test_format_time(self):
        assert format_time(4e-3) == "4ms"


class TestParseFreq:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("2MHz", 2e6),
            ("40 kHz", 4e4),
            ("5.5GHz", 5.5e9),
            ("100hz", 100.0),
            ("1e6", 1e6),
        ],
    )
    def test_round_trips(self, text, expected):
        assert parse_freq(text) == pytest.approx(expected)

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_freq("not a frequency")
