"""Setup shim for offline legacy editable installs (pip --no-use-pep517).

All real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
