"""Bench: regenerate Figure 10 (noise vs maximum misalignment)."""

from repro.experiments.registry import get_experiment

from _harness import run_and_report


def test_fig10(benchmark, ctx):
    result = run_and_report(benchmark, get_experiment("fig10"), ctx)
    assert result.data["one_step_max"] < result.data["aligned_max"]
    assert result.data["one_step_drop"] >= 3.0
