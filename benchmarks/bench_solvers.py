"""Bench A6: solver cross-validation on the reference chip.

The exact modal engine and the trapezoidal MNA engine must tell the
same story about the chip's step response — and the modal path is the
one fast enough to power the experiment suite.  The precompiled batched
chip kernel must in turn reproduce the modal runner's waveforms within
its pinned tolerance, while amortizing a one-time compile across a
whole sweep of runs.
"""

import time

import numpy as np

from repro.machine.chip import reference_chip
from repro.machine.runner import ChipRunner, RunOptions
from repro.machine.workload import CurrentProgram, SyncSpec
from repro.pdn.kernels import KERNEL_TOLERANCE_V, compile_kernel
from repro.pdn.mna import simulate_transient
from repro.pdn.state_space import ModalSystem, build_state_space
from repro.pdn.topology import build_chip_netlist
from repro.pdn.zec12 import reference_chip_parameters


def _cross_validate():
    net = build_chip_netlist(reference_chip_parameters())
    t0 = time.perf_counter()
    modal = ModalSystem(build_state_space(net))
    t_modal_build = time.perf_counter() - t0

    t0 = time.perf_counter()
    mna = simulate_transient(
        net, {"vrm": 0.0, "load_core0": 1.0},
        t_end=2e-6, dt=0.5e-9, observe=["core0"],
    )
    t_mna = time.perf_counter() - t0

    t0 = time.perf_counter()
    exact = modal.step_response("load_core0", ["core0"], mna.times)[0]
    t_modal_eval = time.perf_counter() - t0

    scale = np.abs(exact).max()
    err = np.abs(mna.voltages["core0"][1:] - exact[1:]).max() / scale
    return err, t_modal_build, t_modal_eval, t_mna


def test_solver_agreement(benchmark):
    err, t_build, t_eval, t_mna = benchmark.pedantic(
        _cross_validate, rounds=1, iterations=1
    )
    print(f"\nmax relative disagreement: {err*100:.2f}%")
    print(f"modal build {t_build*1e3:.0f} ms, modal eval {t_eval*1e3:.1f} ms, "
          f"MNA transient {t_mna*1e3:.0f} ms")
    assert err < 0.05


def _didt(freq_hz):
    return CurrentProgram(
        name="bench-didt",
        i_low=14.0,
        i_high=32.0,
        freq_hz=freq_hz,
        rise_time=11e-9,
        sync=SyncSpec(offset=0.0, events_per_sync=1000),
    )


def _kernel_cross_validate():
    chip = reference_chip()
    runner = ChipRunner(chip)
    options = RunOptions(segments=4, base_samples=1536, collect_waveforms=True)
    mappings = [[_didt(freq)] * 6 for freq in (1.3e6, 2.6e6, 5.2e6, 10.4e6)]
    tags = [f"bench{i}" for i in range(len(mappings))]

    t0 = time.perf_counter()
    reference = [
        runner.run(mapping, options, tag)
        for mapping, tag in zip(mappings, tags)
    ]
    t_reference = time.perf_counter() - t0

    t0 = time.perf_counter()
    kernel = compile_kernel(chip.response_library)
    t_compile = time.perf_counter() - t0
    t0 = time.perf_counter()
    batched = runner.run_batch(mappings, options, run_tags=tags, kernel=kernel)
    t_batched = time.perf_counter() - t0

    worst = 0.0
    for ref, fast in zip(reference, batched):
        for node, (_, v_ref) in ref.waveforms.items():
            worst = max(worst, np.abs(fast.waveforms[node][1] - v_ref).max())
    return worst, t_reference, t_compile, t_batched


def test_batched_kernel_agreement(benchmark):
    """The compiled-kernel fast path vs the per-run reference solve:
    waveforms agree within the kernel's pinned tolerance."""
    worst, t_reference, t_compile, t_batched = benchmark.pedantic(
        _kernel_cross_validate, rounds=1, iterations=1
    )
    print(f"\nworst |dv| kernel vs reference: {worst:.3e} V "
          f"(budget {KERNEL_TOLERANCE_V:.0e} V)")
    print(f"reference solve {t_reference*1e3:.0f} ms, kernel compile "
          f"{t_compile*1e3:.0f} ms, batched solve {t_batched*1e3:.0f} ms")
    assert worst < KERNEL_TOLERANCE_V
