"""Bench A6: solver cross-validation on the reference chip.

The exact modal engine and the trapezoidal MNA engine must tell the
same story about the chip's step response — and the modal path is the
one fast enough to power the experiment suite.
"""

import time

import numpy as np

from repro.pdn.mna import simulate_transient
from repro.pdn.state_space import ModalSystem, build_state_space
from repro.pdn.topology import build_chip_netlist
from repro.pdn.zec12 import reference_chip_parameters


def _cross_validate():
    net = build_chip_netlist(reference_chip_parameters())
    t0 = time.perf_counter()
    modal = ModalSystem(build_state_space(net))
    t_modal_build = time.perf_counter() - t0

    t0 = time.perf_counter()
    mna = simulate_transient(
        net, {"vrm": 0.0, "load_core0": 1.0},
        t_end=2e-6, dt=0.5e-9, observe=["core0"],
    )
    t_mna = time.perf_counter() - t0

    t0 = time.perf_counter()
    exact = modal.step_response("load_core0", ["core0"], mna.times)[0]
    t_modal_eval = time.perf_counter() - t0

    scale = np.abs(exact).max()
    err = np.abs(mna.voltages["core0"][1:] - exact[1:]).max() / scale
    return err, t_modal_build, t_modal_eval, t_mna


def test_solver_agreement(benchmark):
    err, t_build, t_eval, t_mna = benchmark.pedantic(
        _cross_validate, rounds=1, iterations=1
    )
    print(f"\nmax relative disagreement: {err*100:.2f}%")
    print(f"modal build {t_build*1e3:.0f} ms, modal eval {t_eval*1e3:.1f} ms, "
          f"MNA transient {t_mna*1e3:.0f} ms")
    assert err < 0.05
