"""Bench A8: chip-population reproducibility.

"Experiments have been run on different processors multiple times to
check their reproducibility" — the same metric across a seeded chip
population must cluster tightly (process variation moves it by
percents, not factors).
"""

from repro.analysis.population import run_population_study
from repro.machine.runner import ChipRunner, RunOptions


def _population(ctx):
    program = ctx.generator.max_didt(
        freq_hz=ctx.resonant_freq_hz, synchronize=True
    ).current_program()

    def worst_noise(chip) -> float:
        result = ChipRunner(chip).run(
            [program] * 6, RunOptions(segments=4), run_tag="population"
        )
        return result.max_p2p

    return run_population_study(worst_noise, "worst-case %p2p", n_chips=6)


def test_population_reproducibility(benchmark, ctx):
    stat = benchmark.pedantic(_population, args=(ctx,), rounds=1, iterations=1)
    print("\n" + stat.summary())
    assert stat.spread_pct < 30.0
    assert 50.0 < stat.mean < 75.0
