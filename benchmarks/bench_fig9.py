"""Bench: regenerate Figure 9 (noise vs stimulus frequency, sync)."""

from repro.experiments.registry import get_experiment

from _harness import run_and_report


def test_fig9(benchmark, ctx):
    result = run_and_report(benchmark, get_experiment("fig9"), ctx)
    # Paper: ~61 %p2p peak, ~+20 point uplift, and synchronized
    # non-resonant stimulation beats unsynchronized resonant.
    assert 52.0 <= result.data["peak_sync_p2p"] <= 72.0
    assert result.data["mean_uplift"] > 5.0
    assert result.data["nonresonant_sync_beats_resonant_unsync"]
