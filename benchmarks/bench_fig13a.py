"""Bench: regenerate Figure 13a (inter-core noise correlation)."""

from repro.experiments.registry import get_experiment

from _harness import run_and_report


def test_fig13a(benchmark, ctx):
    result = run_and_report(benchmark, get_experiment("fig13a"), ctx)
    assert result.data["min_correlation"] > 0.8
    assert result.data["row_clusters_detected"]
