"""Bench: regenerate Figure 12 (Vmin margins grid)."""

from repro.experiments.registry import get_experiment

from _harness import run_and_report


def test_fig12(benchmark, ctx):
    result = run_and_report(benchmark, get_experiment("fig12"), ctx)
    low, high = result.data["sync_band"]
    assert high <= 0.05 and high - low <= 0.03
    assert result.data["unsync_more_than_doubles"]
