"""Bench: regenerate Figure 7b (PDN impedance profile)."""

from repro.experiments.registry import get_experiment

from _harness import run_and_report


def test_fig7b(benchmark, ctx):
    result = run_and_report(benchmark, get_experiment("fig7b"), ctx)
    freqs = [f for f, _ in result.data["resonances"]]
    assert any(1e6 < f < 5e6 for f in freqs)   # first droop band
    assert any(2e4 < f < 8e4 for f in freqs)   # board band
    assert result.data["no_peak_above_5mhz"]
