"""Bench: regenerate Figure 11b (noise vs workload distribution)."""

from repro.experiments.registry import get_experiment

from _harness import run_and_report


def test_fig11b(benchmark, ctx):
    result = run_and_report(benchmark, get_experiment("fig11b"), ctx)
    effect = result.data["distribution_effect"]
    assert effect is not None and abs(effect) < 10.0  # weak trend
