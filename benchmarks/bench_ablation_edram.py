"""Ablation A1: deep-trench eDRAM decap and the first-droop shift.

The paper (§V-A): deep-trench technology raised the on-chip capacitance
~40x, moving the 'first droop' from the traditional 30-100 MHz band to
~2 MHz and killing oscillatory behavior above 5 MHz.  Dividing the
on-chip capacitances back out must move the droop back up.
"""

from repro.pdn.impedance import impedance_profile
from repro.pdn.topology import build_chip_netlist
from repro.pdn.zec12 import reference_chip_parameters


def _first_droop_shift():
    base = reference_chip_parameters()
    thin = base.without_deep_trench(40.0)
    base_peak = impedance_profile(
        build_chip_netlist(base), "load_core0", "core0", 1e5, 1e9
    ).peak()
    thin_peak = impedance_profile(
        build_chip_netlist(thin), "load_core0", "core0", 1e5, 1e9
    ).peak()
    return base_peak, thin_peak


def test_edram_ablation(benchmark):
    (base_f, base_z), (thin_f, thin_z) = benchmark.pedantic(
        _first_droop_shift, rounds=1, iterations=1
    )
    print(f"\nfirst droop with deep trench:    {base_f/1e6:8.2f} MHz ({base_z*1e3:.2f} mOhm)")
    print(f"first droop without deep trench: {thin_f/1e6:8.2f} MHz ({thin_z*1e3:.2f} mOhm)")
    assert 1e6 < base_f < 5e6
    assert thin_f > 8e6        # back toward the traditional band
    assert thin_f > 4 * base_f
