"""Bench: regenerate Figure 11a (noise vs % of maximum ΔI)."""

from repro.experiments.registry import get_experiment

from _harness import run_and_report


def test_fig11a(benchmark, ctx):
    result = run_and_report(benchmark, get_experiment("fig11a"), ctx)
    assert result.data["noise_rises_with_delta_i"]
