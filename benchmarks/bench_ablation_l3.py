"""Ablation A2: the L3 as a damping element between the core rows.

The paper (§VI): the L3's large capacitance "slightly isolates the
noise from one cluster to another, acting as a damping element".
Shrinking the L3 capacitance must reduce the same-row vs cross-row
propagation asymmetry that creates the {0,2,4}/{1,3,5} clusters.
"""

import numpy as np

from repro.analysis.propagation import propagation_traces
from repro.machine.chip import reference_chip


def _asymmetry(chip):
    trace = propagation_traces(chip, source_core=0, delta_i=18.0, samples=1500)
    same = np.mean([trace.peak_droop_by_core[c] for c in (2, 4)])
    cross = np.mean([trace.peak_droop_by_core[c] for c in (1, 3, 5)])
    return same / cross


def _compare():
    base = reference_chip()
    thin = base.with_pdn(base.config.pdn.without_l3_bridge())
    return _asymmetry(base), _asymmetry(thin)


def test_l3_damping_ablation(benchmark):
    with_l3, without_l3 = benchmark.pedantic(_compare, rounds=1, iterations=1)
    print(f"\nsame-row/cross-row droop ratio with L3:    {with_l3:.3f}")
    print(f"same-row/cross-row droop ratio without L3: {without_l3:.3f}")
    assert with_l3 > 1.05          # clusters exist
    assert with_l3 > without_l3    # the L3 bridge creates the separation
