"""Bench: regenerate Figure 15 (noise-aware mapping opportunity)."""

from repro.experiments.registry import get_experiment

from _harness import run_and_report


def test_fig15(benchmark, ctx):
    result = run_and_report(benchmark, get_experiment("fig15"), ctx)
    assert result.data["extremes_have_no_freedom"]
    assert result.data["mid_count_reduction"] > 0.0
