"""Bench: regenerate Figure 7a (noise vs stimulus frequency, unsync)."""

from repro.experiments.registry import get_experiment

from _harness import run_and_report


def test_fig7a(benchmark, ctx):
    result = run_and_report(benchmark, get_experiment("fig7a"), ctx)
    # Paper: resonant band ~2 MHz, max ~41 %p2p.
    assert 8e5 < result.data["peak_freq_hz"] < 6e6
    assert 30.0 <= result.data["peak_p2p"] <= 52.0
