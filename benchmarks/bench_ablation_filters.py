"""Ablation A4: does the IPC filter earn its place in the pipeline?

"It is well-known that IPC is directly related to power" — the
IPC-filtered pool should contain markedly more powerful sequences than
a random sample of the microarchitecturally valid pool.
"""

import numpy as np

from repro.core.filters import ipc_filter, microarch_filter
from repro.core.sequences import enumerate_sequences
from repro.uarch.power import estimate_loop_power


def _compare(ctx):
    target = ctx.generator.target
    candidates = ctx.generator.max_power_result.candidates
    survivors, _ = microarch_filter(
        enumerate_sequences(candidates), target.core
    )
    top, _ = ipc_filter(survivors, target.core, keep=200)
    rng = np.random.default_rng(7)
    sample = [survivors[int(i)] for i in rng.choice(len(survivors), 200, replace=False)]
    model = target.energy_model
    power_top = np.mean([estimate_loop_power(list(s), model).watts for s in top])
    power_rand = np.mean([estimate_loop_power(list(s), model).watts for s in sample])
    return power_top, power_rand


def test_ipc_filter_effectiveness(benchmark, ctx):
    power_top, power_rand = benchmark.pedantic(
        _compare, args=(ctx,), rounds=1, iterations=1
    )
    print(f"\nmean power of IPC-filtered pool: {power_top:.2f} W")
    print(f"mean power of random valid pool: {power_rand:.2f} W")
    assert power_top > power_rand + 1.0
