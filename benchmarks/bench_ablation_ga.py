"""Ablation A3: white-box search pipeline vs the GA baseline.

The paper contrasts its systematic methodology with GA-based stressmark
search (the AUDIT line of work).  The comparison: final sequence power
and the number of hardware power evaluations each approach needs.
"""

from repro.core.genetic import genetic_max_power_search
from repro.measure.powermeter import PowerMeter


def _compare(ctx):
    whitebox = ctx.generator.max_power_result
    ga = genetic_max_power_search(
        ctx.generator.target,
        whitebox.candidates,
        meter=PowerMeter(ctx.generator.target, seed=303),
        population=40,
        generations=25,
        seed=11,
    )
    return whitebox, ga


def test_whitebox_vs_ga(benchmark, ctx):
    whitebox, ga = benchmark.pedantic(_compare, args=(ctx,), rounds=1, iterations=1)
    print(f"\nwhite-box: {whitebox.power_w:.2f} W after {whitebox.evaluated} "
          f"power evaluations ({' '.join(whitebox.mnemonics)})")
    print(f"GA:        {ga.power_w:.2f} W after {ga.evaluations} "
          f"power evaluations ({' '.join(ga.mnemonics)})")
    assert whitebox.power_w >= ga.power_w * 0.97
