"""Bench A5: utilization-based dynamic guard-banding (paper §VII-B).

Builds the margin schedule from the Figure 11 dataset and evaluates the
energy saving over representative utilization profiles: the benefit
grows as the system idles more, and vanishes at full utilization.
"""

from repro.analysis.guardband import build_policy, guardband_savings


def _evaluate(ctx):
    policy = build_policy(ctx.delta_i_points())
    profiles = {
        # Degenerate single-bucket profiles are rejected outright
        # (GuardbandProfileError), so "fully utilized" carries an
        # explicit zero-share low bucket.
        "fully utilized": {5: 0.0, 6: 1.0},
        "typical server (60% busy)": {2: 0.25, 4: 0.50, 6: 0.25},
        "lightly loaded": {0: 0.30, 1: 0.40, 2: 0.20, 6: 0.10},
    }
    return policy, {
        name: guardband_savings(policy, profile)
        for name, profile in profiles.items()
    }


def test_guardband_savings(benchmark, ctx):
    policy, savings = benchmark.pedantic(
        _evaluate, args=(ctx,), rounds=1, iterations=1
    )
    print()
    for cores in sorted(policy.margin_by_active_cores):
        print(f"margin with up to {cores} active cores: "
              f"{policy.margin_for(cores)*100:.2f}%")
    for name, value in savings.items():
        print(f"dynamic power saving, {name}: {value*100:.2f}%")
    assert savings["fully utilized"] == 0.0
    assert savings["lightly loaded"] > savings["typical server (60% busy)"] > 0.0
