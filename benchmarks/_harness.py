"""Shared helper for the benchmark harness."""

from __future__ import annotations


def run_and_report(benchmark, driver, ctx):
    """Benchmark one experiment driver and print its report."""
    result = benchmark.pedantic(driver, args=(ctx,), rounds=1, iterations=1)
    print()
    print(result)
    return result
