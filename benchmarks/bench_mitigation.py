"""Bench A7: the mitigation mechanisms, measured.

The paper's §V-F conclusion — "if a mechanism is implemented to avoid
the synchronization of ΔI events happening on different cores, the
noise can be reduced by 2-3x" — executed by the staggering mechanism,
plus the global ΔI throttle's noise/throughput trade.
"""

from repro.machine.runner import RunOptions
from repro.mitigation.staggering import evaluate_stagger
from repro.mitigation.throttle import GlobalDidtThrottle


def _evaluate(ctx):
    program = ctx.generator.max_didt(
        freq_hz=ctx.resonant_freq_hz, synchronize=True
    ).current_program()
    mapping = [program] * 6
    options = RunOptions(segments=8)
    stagger = evaluate_stagger(ctx.chip, mapping, window_steps=8, options=options)
    throttle = GlobalDidtThrottle(ctx.chip, budget_amps=45.0)
    throttled = throttle.evaluate(mapping, options)
    return stagger, throttled


def test_mitigation_mechanisms(benchmark, ctx):
    stagger, throttled = benchmark.pedantic(
        _evaluate, args=(ctx,), rounds=1, iterations=1
    )
    print(f"\nstaggering: {stagger.baseline.max_p2p:.1f} -> "
          f"{stagger.staggered.max_p2p:.1f} %p2p "
          f"(x{stagger.reduction_factor:.2f} reduction, offsets up to "
          f"{stagger.plan.window * 1e9:.0f} ns)")
    print(f"throttle:   {throttled.baseline.max_p2p:.1f} -> "
          f"{throttled.throttled.max_p2p:.1f} %p2p at "
          f"{throttled.throughput_cost * 100:.1f}% throughput cost "
          f"(derate {throttled.derate_factor:.2f})")
    assert stagger.reduction_factor > 1.15
    assert throttled.noise_reduction > 0.0
