"""Bench: regenerate Figure 13b (ΔI step propagation from core 0)."""

from repro.experiments.registry import get_experiment

from _harness import run_and_report


def test_fig13b(benchmark, ctx):
    result = run_and_report(benchmark, get_experiment("fig13b"), ctx)
    assert result.data["same_row_stronger"]
    assert result.data["same_row_faster"]
