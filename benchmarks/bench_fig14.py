"""Bench: regenerate Figure 14 (two mappings of three stressmarks)."""

from repro.experiments.registry import get_experiment

from _harness import run_and_report


def test_fig14(benchmark, ctx):
    result = run_and_report(benchmark, get_experiment("fig14"), ctx)
    assert result.data["same_cluster_is_noisier"]
    assert 0.0 < result.data["penalty"] <= 15.0
