"""Bench: regenerate Table I (EPI profile extremes)."""

from repro.experiments.registry import get_experiment

from _harness import run_and_report


def test_table1(benchmark, ctx):
    result = run_and_report(benchmark, get_experiment("table1"), ctx)
    assert result.data["top5_set_match"]
    assert result.data["bottom5_set_match"]
