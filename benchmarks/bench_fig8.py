"""Bench: regenerate Figure 8 (oscilloscope shot at resonance)."""

from repro.experiments.registry import get_experiment

from _harness import run_and_report


def test_fig8(benchmark, ctx):
    result = run_and_report(benchmark, get_experiment("fig8"), ctx)
    assert result.data["period_match"]
    assert result.data["p2p_volts"] > 0.05
