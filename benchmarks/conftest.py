"""Benchmark harness fixtures.

Each bench regenerates one of the paper's tables/figures at full
fidelity and prints the same rows/series the paper reports.  The
context (EPI profile, max-power search, chip solver artifacts, the
shared ΔI mapping dataset) is built once per session.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments.common import default_context


@pytest.fixture(scope="session")
def ctx():
    return default_context()
